"""Batched waveform-bank sampling kernel.

:class:`WaveformBank` flattens the ragged per-endpoint
:class:`~repro.core.calibration.EndpointWaveform` list of one sensor
instance into dense arrays so that an entire ``(cycle x endpoint)``
block of latched values is computed by vectorized numpy kernels instead
of a per-endpoint Python loop.

Two kernels cover the two sampling regimes:

* **Common query time** (zero per-register jitter; shared capture-clock
  jitter is folded into the query time before the bank is consulted):
  all endpoints are sampled at the same nominal-scale instant per
  cycle, so the latched word only depends on which *global interval*
  between consecutive edge times the query falls into.  The bank
  precomputes the sorted union of all finite edge times and a
  ``(num_intervals, num_bits)`` word table; sampling is then one
  ``np.searchsorted`` over the union plus one row gather — about 20x
  faster than the legacy loop on the 192-endpoint ALU.

* **Per-register jitter**: every ``(cycle, endpoint)`` pair has its own
  query time.  The jitter matrix is drawn in one call with the exact
  same generator stream the legacy loop consumed (row ``i`` of a
  ``(num_bits, n)`` draw equals endpoint ``i``'s sequential draw), so
  results stay bit-identical.  For banks whose endpoints have few
  transitions (the ALU: at most a handful) the latch interval index is
  accumulated with one vectorized comparison per padded edge slot; deep
  banks (the C6288's multiply tree has 10^4-edge endpoints) fall back
  to a per-endpoint ``searchsorted`` over the flat arrays, which is
  what the legacy loop did minus the Python object overhead.

Both kernels reproduce :meth:`EndpointWaveform.value_at` semantics
exactly, including the inclusive tie rule (a query landing exactly on
an edge time observes the post-edge value); the test suite asserts
bit-exact equivalence against the legacy loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.calibration import EndpointWaveform

#: Endpoints with at most this many finite edges use the padded
#: comparison kernel under per-register jitter; deeper waveforms use a
#: per-endpoint binary search instead.
PADDED_EDGE_LIMIT = 16


class WaveformBank:
    """Flattened, vectorized view of one instance's endpoint waveforms.

    Attributes:
        num_bits: number of endpoints in the bank.
        offsets: (num_bits + 1,) slice bounds of each endpoint's edges
            within the flat arrays.
        flat_times_ps: concatenated ascending edge times (the leading
            ``-inf`` carrier entries of the source waveforms are kept,
            so ``flat_times_ps[offsets[i]]`` is ``-inf``).
        flat_values: concatenated post-edge values, aligned with
            ``flat_times_ps``.
    """

    def __init__(self, waveforms: Sequence["EndpointWaveform"]):
        if not waveforms:
            raise ValueError("bank needs at least one waveform")
        self.num_bits = len(waveforms)
        lengths = np.array(
            [w.edge_times_ps.shape[0] for w in waveforms], dtype=np.int64
        )
        self.offsets = np.concatenate(([0], np.cumsum(lengths)))
        self.flat_times_ps = np.concatenate(
            [np.asarray(w.edge_times_ps, dtype=float) for w in waveforms]
        )
        self.flat_values = np.concatenate(
            [np.asarray(w.values_after_edge, dtype=np.uint8) for w in waveforms]
        )
        self.initial_values = self.flat_values[self.offsets[:-1]].copy()

        # Global interval table: sorted union of all finite edge times.
        finite = self.flat_times_ps[np.isfinite(self.flat_times_ps)]
        self.interval_times_ps = np.unique(finite)
        self._interval_words: np.ndarray | None = None

        # Per-endpoint finite-edge counts drive the jittered-path kernel
        # choice; values alternate for real transition histories, which
        # lets the padded kernel recover values from index parity alone.
        self._finite_counts = lengths - np.array(
            [1 if not np.isfinite(w.edge_times_ps[0]) else 0 for w in waveforms],
            dtype=np.int64,
        )
        self.max_edges = int(self._finite_counts.max())
        self._alternating = all(
            w.values_after_edge.shape[0] < 2
            or np.all(w.values_after_edge[1:] != w.values_after_edge[:-1])
            for w in waveforms
        )
        self._padded_times: np.ndarray | None = None
        self._waveforms = list(waveforms)

    # ------------------------------------------------------------------
    # Lazy precomputed tables
    # ------------------------------------------------------------------
    @property
    def num_intervals(self) -> int:
        """Rows of the word table (one per inter-edge interval)."""
        return self.interval_times_ps.shape[0] + 1

    @property
    def interval_words(self) -> np.ndarray:
        """(num_intervals, num_bits) latched word per global interval.

        Row 0 is the pre-first-edge (initial) word; row ``k >= 1`` is
        the word valid on ``[interval_times_ps[k-1],
        interval_times_ps[k])`` — matching the inclusive-edge rule of
        :meth:`EndpointWaveform.value_at`.
        """
        if self._interval_words is None:
            words = np.empty((self.num_intervals, self.num_bits), dtype=np.uint8)
            words[0] = self.initial_values
            if self.interval_times_ps.size:
                for i, waveform in enumerate(self._waveforms):
                    words[1:, i] = waveform.value_at(self.interval_times_ps)
            self._interval_words = words
        return self._interval_words

    @property
    def padded_times(self) -> np.ndarray:
        """(max_edges, num_bits) finite edge times, padded with +inf.

        Edge-major layout keeps each comparison slab contiguous in the
        padded kernel's inner loop.
        """
        if self._padded_times is None:
            padded = np.full((self.max_edges, self.num_bits), np.inf)
            for i in range(self.num_bits):
                lo = self.offsets[i]
                hi = self.offsets[i + 1]
                times = self.flat_times_ps[lo:hi]
                times = times[np.isfinite(times)]
                padded[: times.shape[0], i] = times
            self._padded_times = padded
        return self._padded_times

    # ------------------------------------------------------------------
    # Sampling kernels
    # ------------------------------------------------------------------
    def sample(
        self,
        times_ps: np.ndarray,
        jitter_ps: float = 0.0,
        seed: int = 0,
    ) -> np.ndarray:
        """Latched endpoint words at the given nominal-scale times.

        Args:
            times_ps: (N,) per-cycle query time; shared capture-clock
                jitter must already be folded in by the caller.
            jitter_ps: sigma of the per-(cycle, endpoint) Gaussian
                jitter.  The draw consumes the same generator stream as
                the legacy per-endpoint loop, so outputs are
                bit-identical for a given seed.
            seed: jitter seed (ignored when ``jitter_ps <= 0``).

        Returns:
            uint8 array (N, num_bits).
        """
        tau = np.asarray(times_ps, dtype=float)
        if tau.ndim != 1:
            raise ValueError("query times must be 1-D")
        if jitter_ps <= 0:
            return self._sample_common(tau)
        rng = make_rng(seed, "endpoint-jitter")
        if self._alternating and self.max_edges <= PADDED_EDGE_LIMIT:
            return self._sample_padded(tau, jitter_ps, rng)
        return self._sample_per_endpoint(tau, jitter_ps, rng)

    def _sample_common(self, tau: np.ndarray) -> np.ndarray:
        """All endpoints share the query time: table row lookup."""
        index = np.searchsorted(self.interval_times_ps, tau, side="right")
        return self.interval_words[index]

    #: Endpoint rows drawn/evaluated per slab in the padded kernel;
    #: bounds temporaries to a few MB so they stay cache-resident.
    _PADDED_BLOCK = 16

    def _sample_padded(
        self, tau: np.ndarray, jitter_ps: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Few-edge banks: count crossed edges per (bit, cycle).

        The latch interval index is the number of edges at or before
        the jittered query (ties inclusive, matching
        ``searchsorted(..., side="right")``); alternation turns index
        parity plus the initial value into the latched bit without a
        gather.  A ``(block, N)`` draw consumes the generator stream in
        the same order as sequential per-endpoint draws, so results are
        bit-identical to the reference loop.
        """
        n = tau.shape[0]
        padded = self.padded_times
        bits = np.empty((n, self.num_bits), dtype=np.uint8)
        for start in range(0, self.num_bits, self._PADDED_BLOCK):
            end = min(start + self._PADDED_BLOCK, self.num_bits)
            queries = rng.normal(0.0, jitter_ps, size=(end - start, n))
            queries += tau[None, :]
            index = np.zeros((end - start, n), dtype=np.uint8)
            for k in range(self.max_edges):
                index += queries >= padded[k, start:end, None]
            bits[:, start:end] = (
                self.initial_values[start:end, None] ^ (index & 1)
            ).T
        return bits

    def _sample_per_endpoint(
        self, tau: np.ndarray, jitter_ps: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Deep banks: binary search each endpoint's own edge list."""
        n = tau.shape[0]
        bits = np.empty((n, self.num_bits), dtype=np.uint8)
        for i in range(self.num_bits):
            queries = tau + rng.normal(0.0, jitter_ps, size=n)
            lo = self.offsets[i]
            hi = self.offsets[i + 1]
            index = np.searchsorted(
                self.flat_times_ps[lo:hi], queries, side="right"
            )
            bits[:, i] = self.flat_values[lo:hi][
                np.clip(index - 1, 0, None)
            ]
        return bits


def build_bank(waveforms: Sequence["EndpointWaveform"]) -> WaveformBank:
    """Construct a :class:`WaveformBank` (convenience wrapper)."""
    return WaveformBank(list(waveforms))

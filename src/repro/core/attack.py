"""End-to-end benign-sensor key-recovery attack orchestration.

:class:`AttackCampaign` wires the full pipeline of the paper's Fig. 2
into one object:

1. **Characterize** — run the RO on/off schedule and an AES burst
   through the PDN, capture the benign sensor, and census the
   sensitive bits (Figs. 5–8 / 14–16);
2. **Collect** — for each of N encryptions, compute the victim's
   last-round activity, the resulting supply voltage at the aligned
   sensor sample, and the latched endpoint word (chunked, vectorized);
3. **Reduce** — Hamming weight over bits of interest, or a single
   endpoint bit;
4. **Attack** — CPA on the reduced trace against the single-bit
   last-round hypothesis.

The same campaign object drives the TDC for baseline comparisons, so
"ALU vs TDC" experiments share every other pipeline stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aes.aes128 import AES128
from repro.aes.leakage import LeakageModel, random_ciphertexts
from repro.attacks.cpa import CPAResult, run_cpa
from repro.attacks.models import (
    DEFAULT_TARGET_BIT,
    DEFAULT_TARGET_BYTE,
    single_bit_hypothesis,
)
from repro.core.endpoint_sensor import BenignSensor
from repro.core.postprocess import (
    SensitivityCensus,
    hamming_weight_series,
    sensitivity_census,
)
from repro.pdn.aggressors import ROAggressorSchedule, aes_current_waveform
from repro.pdn.model import PDNModel
from repro.sensors.ro import ROSensor
from repro.sensors.tdc import TDCSensor
from repro.util.rng import derive_seed

#: Reduction modes accepted by :meth:`AttackCampaign.collect_reduced_traces`.
REDUCTION_HW = "hamming_weight"
REDUCTION_SINGLE_BIT = "single_bit"

#: Traces generated per vectorized block.  Per-block jitter seeds are
#: derived from the block's *global* start index, so any consumer that
#: honours this grid (the serial collectors below, the sharded campaign
#: driver in :mod:`repro.experiments.parallel`) reproduces identical
#: leakage regardless of how the work is partitioned.
TRACE_CHUNK = 50_000


@dataclass
class CharacterizationResult:
    """Output of the preliminary RO/AES characterization.

    Attributes:
        census: sensitive-bit census (Figs. 7/15).
        ro_bits: raw captures under RO activity (Figs. 5/14).
        aes_bits: raw captures under AES activity.
        ro_voltages / aes_voltages: the underlying supply waveforms.
        variances_ro / variances_aes: per-bit variances (Figs. 8/16).
    """

    census: SensitivityCensus
    ro_bits: np.ndarray
    aes_bits: np.ndarray
    ro_voltages: np.ndarray
    aes_voltages: np.ndarray

    @property
    def variances_ro(self) -> np.ndarray:
        return self.ro_bits.astype(float).var(axis=0)

    @property
    def variances_aes(self) -> np.ndarray:
        return self.aes_bits.astype(float).var(axis=0)

    def bit_response_correlations(self) -> np.ndarray:
        """|corr| of each endpoint bit with the common voltage signal.

        The attacker cannot observe the supply directly, but the
        Hamming weight of all sensitive bits is itself a voltage proxy
        (Fig. 6), so ``|corr(bit_i, HW - bit_i)`` measured on the AES
        characterization capture ranks how cleanly each endpoint
        couples to voltage *at the attack-time operating point*.  This
        is an entirely offline analysis, as the paper notes for its
        single-bit selection.
        """
        bits = self.aes_bits.astype(np.float64)
        mask = self.census.ro_sensitive
        hw = bits[:, mask].sum(axis=1)
        rho = np.zeros(bits.shape[1])
        for i in range(bits.shape[1]):
            x = bits[:, i]
            if x.std() == 0:
                continue
            proxy = hw - x if mask[i] else hw
            if proxy.std() == 0:
                continue
            rho[i] = abs(float(np.corrcoef(x, proxy)[0, 1]))
        return rho

    def best_bit(self, rank: int = 0) -> int:
        """Single-bit sensor endpoint at the given quality rank.

        Bits are ranked by :meth:`bit_response_correlations` among the
        RO-sensitive set; ``rank=0`` is the paper's "highest variance"
        pick (bit 21 of their ALU, bit 28 of their C6288 — the indices
        differ per implementation run), ``rank=1`` the alternate bit of
        Fig. 13.
        """
        rho = self.bit_response_correlations()
        candidates = np.flatnonzero(self.census.ro_sensitive)
        if candidates.size == 0:
            raise RuntimeError("characterization found no sensitive bits")
        order = candidates[np.argsort(-rho[candidates], kind="stable")]
        if rank >= order.size:
            raise ValueError(
                "rank %d exceeds the %d sensitive bits" % (rank, order.size)
            )
        return int(order[rank])


class AttackCampaign:
    """Orchestrates characterization, collection, and CPA.

    Args:
        sensor: the benign sensor under evaluation.
        cipher: victim cipher (its last round key is the target).
        leakage: victim leakage/voltage model.
        pdn: PDN used for the characterization transients.
        seed: campaign seed (traces, noise, jitter all derive from it).
    """

    def __init__(
        self,
        sensor: BenignSensor,
        cipher: AES128,
        leakage: Optional[LeakageModel] = None,
        pdn: Optional[PDNModel] = None,
        seed: int = 0,
    ):
        self.sensor = sensor
        self.cipher = cipher
        self.leakage = leakage or LeakageModel()
        self.pdn = pdn or PDNModel(seed=derive_seed(seed, "pdn"))
        self.seed = seed
        self._characterization: Optional[CharacterizationResult] = None

    # ------------------------------------------------------------------
    # Phase 1: characterization
    # ------------------------------------------------------------------
    def characterize(
        self,
        ro_schedule: Optional[ROAggressorSchedule] = None,
        num_samples: int = 1200,
        aes_cycle_hd: Optional[Sequence[int]] = None,
        census_samples: int = 400,
    ) -> CharacterizationResult:
        """Run the RO and AES preliminary experiments (Sec. V-A).

        Args:
            ro_schedule: RO on/off pattern (default: paper's 8000 ROs).
            num_samples: characterization capture length (the longer
                tail improves the single-bit ranking statistics).
            aes_cycle_hd: per-cycle AES activity; defaults to repeated
                encryptions of random plaintexts through the datapath
                model.
            census_samples: capture prefix used for the toggling
                census.  "Toggles at least once" grows with observation
                time, so the census window is fixed (the paper's
                Fig. 5-style captures are a few hundred samples) while
                the full capture still feeds the variance/response
                ranking.
        """
        schedule = ro_schedule or ROAggressorSchedule()
        ro_current = schedule.current_waveform(num_samples)
        ro_voltages = self.pdn.simulate({"attacker": ro_current})[
            self.pdn.regions[0]
        ]
        ro_bits = self.sensor.sample_bits(
            ro_voltages, seed=derive_seed(self.seed, "char-ro")
        )

        if aes_cycle_hd is None:
            aes_cycle_hd = self._default_aes_activity(num_samples)
        aes_current = aes_current_waveform(
            aes_cycle_hd,
            num_samples,
            start_sample=0,
            samples_per_cycle=1.5,  # 100 MHz AES at 150 MHz sampling
        )
        aes_voltages = self.pdn.simulate({"victim": aes_current})[
            self.pdn.regions[0]
        ]
        aes_bits = self.sensor.sample_bits(
            aes_voltages, seed=derive_seed(self.seed, "char-aes")
        )
        window = min(census_samples, num_samples)
        result = CharacterizationResult(
            census=sensitivity_census(
                ro_bits[:window], aes_bits[:window]
            ),
            ro_bits=ro_bits,
            aes_bits=aes_bits,
            ro_voltages=ro_voltages,
            aes_voltages=aes_voltages,
        )
        self._characterization = result
        return result

    def _default_aes_activity(self, num_samples: int) -> List[int]:
        """Back-to-back encryptions of random plaintexts (cycle HDs).

        The plaintext draw is one block ``(count, 16)`` from the same
        generator state the original per-plaintext loop consumed, and a
        numpy Generator produces identical bytes either way, so the
        batched datapath returns the exact activity sequence the serial
        ``encryption_cycle_hd`` loop produced.
        """
        from repro.aes.batch import encryption_cycle_hd_batch

        rng = np.random.default_rng(derive_seed(self.seed, "char-aes-pt"))
        needed_cycles = int(np.ceil(num_samples / 1.5)) + 44
        count = -(-needed_cycles // 44)
        plaintexts = rng.integers(0, 256, size=(count, 16), dtype=np.uint8)
        return (
            encryption_cycle_hd_batch(self.cipher, plaintexts)
            .reshape(-1)
            .tolist()
        )

    @property
    def characterization(self) -> CharacterizationResult:
        if self._characterization is None:
            self.characterize()
        assert self._characterization is not None
        return self._characterization

    # ------------------------------------------------------------------
    # Phase 2+3+4: collection, reduction, CPA
    # ------------------------------------------------------------------
    def resolve_reduction(
        self, reduction: str, bit: Optional[int] = None
    ) -> Tuple[Optional[np.ndarray], Optional[int]]:
        """Validate a reduction mode against the characterization.

        Returns:
            ``(mask, bit)``: the sensitive-bit mask for Hamming-weight
            reduction (else None), and the resolved endpoint index for
            single-bit reduction (else None).
        """
        characterization = self.characterization
        if reduction == REDUCTION_HW:
            mask = characterization.census.ro_sensitive
            if not mask.any():
                raise RuntimeError("no sensitive bits to reduce over")
            return mask, None
        if reduction == REDUCTION_SINGLE_BIT:
            if bit is None:
                bit = characterization.best_bit()
            if not 0 <= bit < self.sensor.num_bits:
                raise ValueError("bit %d outside endpoint word" % bit)
            return None, bit
        raise ValueError("unknown reduction %r" % (reduction,))

    def campaign_inputs(
        self, num_traces: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Ciphertexts and aligned supply voltages for one campaign.

        Both draws are campaign-global (seeded once for all N traces),
        so any partitioning of downstream work observes the same
        victim behaviour.
        """
        ciphertexts = random_ciphertexts(
            num_traces, seed=derive_seed(self.seed, "campaign-ct")
        )
        voltages = self.leakage.voltages(
            ciphertexts,
            self.cipher.last_round_key,
            seed=derive_seed(self.seed, "campaign-noise"),
        )
        return ciphertexts, voltages

    def working_set_bytes_per_trace(self) -> int:
        """Approximate per-trace footprint of the reduction pipeline.

        Counts the per-trace intermediates a leakage chunk touches: the
        sampled endpoint bits (uint8 per endpoint), the per-endpoint
        jitter draws (float64), and the voltage/leakage scalars.  Used
        by :func:`repro.experiments.parallel.plan_chunk_size` to size
        leakage chunks to a cache-resident working set.
        """
        return int(9 * self.sensor.num_bits + 32)

    def reduced_leakage_block(
        self,
        voltages: np.ndarray,
        global_start: int,
        reduction: str,
        mask: Optional[np.ndarray],
        bit: Optional[int],
    ) -> np.ndarray:
        """Reduced sensor leakage for one chunk of the campaign.

        Args:
            voltages: voltage slice for traces
                ``[global_start, global_start + len(voltages))``.
            global_start: the slice's offset in the full campaign —
                the jitter seed is keyed on it, so identical slices
                yield identical leakage no matter which worker or loop
                computes them.
            reduction / mask / bit: from :meth:`resolve_reduction`.
        """
        bits = self.sensor.sample_bits(
            voltages,
            seed=derive_seed(self.seed, "campaign-jitter", global_start),
        )
        if reduction == REDUCTION_HW:
            return hamming_weight_series(bits, mask)
        return bits[:, bit].astype(np.float64)

    def collect_reduced_traces(
        self,
        num_traces: int,
        reduction: str = REDUCTION_HW,
        bit: Optional[int] = None,
        chunk_size: int = TRACE_CHUNK,
    ) -> Dict[str, np.ndarray]:
        """Generate ciphertexts and reduced sensor traces.

        Args:
            num_traces: encryptions to observe.
            reduction: ``"hamming_weight"`` over the bits of interest,
                or ``"single_bit"``.
            bit: endpoint index for single-bit reduction (default: the
                characterization's best bit).
            chunk_size: traces generated per vectorized block.

        Returns:
            dict with ``"ciphertexts"`` (N, 16), ``"leakage"`` (N,)
            reduced sensor values, and ``"voltages"`` (N,).
        """
        if num_traces < 2:
            raise ValueError("need at least 2 traces")
        mask, bit = self.resolve_reduction(reduction, bit)
        ciphertexts, voltages = self.campaign_inputs(num_traces)
        leakage = np.empty(num_traces, dtype=np.float64)
        for start in range(0, num_traces, chunk_size):
            end = min(start + chunk_size, num_traces)
            leakage[start:end] = self.reduced_leakage_block(
                voltages[start:end], start, reduction, mask, bit
            )
        return {
            "ciphertexts": ciphertexts,
            "leakage": leakage,
            "voltages": voltages,
        }

    def select_single_bit(
        self,
        top_k: int = 10,
        trial_traces: int = 100_000,
        target_byte: int = DEFAULT_TARGET_BYTE,
        target_bit: int = DEFAULT_TARGET_BIT,
    ) -> List[int]:
        """Rank candidate endpoints by a trial-CPA distinguishing score.

        The paper notes the single-bit analysis "is entirely offline and
        easily repeated": an attacker who has collected traces simply
        tries each candidate endpoint and keeps the one whose CPA shows
        the most distinguished peak.  No key knowledge is involved — a
        genuinely informative bit makes *some* candidate's correlation
        stand out from the pack, and that margin is the score.

        Args:
            top_k: candidate endpoints taken from the characterization's
                response-correlation ranking.
            trial_traces: traces used per trial (a prefix of the same
                campaign the full attack consumes).
            target_byte / target_bit: hypothesis parameters.

        Returns:
            candidate bit indices sorted by decreasing distinguishing
            score.
        """
        characterization = self.characterization
        rho = characterization.bit_response_correlations()
        candidates = np.flatnonzero(characterization.census.ro_sensitive)
        if candidates.size == 0:
            raise RuntimeError("characterization found no sensitive bits")
        order = candidates[np.argsort(-rho[candidates], kind="stable")]
        order = order[: max(1, top_k)]

        ciphertexts = random_ciphertexts(
            trial_traces, seed=derive_seed(self.seed, "campaign-ct")
        )
        voltages = self.leakage.voltages(
            ciphertexts,
            self.cipher.last_round_key,
            seed=derive_seed(self.seed, "campaign-noise"),
        )
        hypotheses = single_bit_hypothesis(
            ciphertexts[:, target_byte], bit=target_bit
        )
        scores: Dict[int, float] = {}
        columns = {int(b): np.empty(trial_traces) for b in order}
        chunk = 50_000
        for start in range(0, trial_traces, chunk):
            end = min(start + chunk, trial_traces)
            bits = self.sensor.sample_bits(
                voltages[start:end],
                seed=derive_seed(self.seed, "campaign-jitter", start),
            )
            for b in order:
                columns[int(b)][start:end] = bits[:, int(b)]
        for b in order:
            result = run_cpa(
                columns[int(b)],
                hypotheses,
                checkpoints=[trial_traces],
            )
            final = np.abs(result.correlations[-1])
            top_two = np.partition(final, -2)[-2:]
            second = max(top_two[0], 1e-12)
            scores[int(b)] = float(top_two[1] / second)
        return sorted(scores, key=scores.get, reverse=True)

    def attack(
        self,
        num_traces: int,
        reduction: str = REDUCTION_HW,
        bit: Optional[int] = None,
        target_byte: int = DEFAULT_TARGET_BYTE,
        target_bit: int = DEFAULT_TARGET_BIT,
        checkpoints: Optional[Sequence[int]] = None,
    ) -> CPAResult:
        """Collect traces and run the last-round single-bit CPA.

        Returns a :class:`CPAResult` carrying the correct key byte, so
        rank and measurements-to-disclosure metrics are available.
        """
        data = self.collect_reduced_traces(num_traces, reduction, bit)
        hypotheses = single_bit_hypothesis(
            data["ciphertexts"][:, target_byte], bit=target_bit
        )
        return run_cpa(
            data["leakage"],
            hypotheses,
            checkpoints=checkpoints,
            correct_key=self.cipher.last_round_key[target_byte],
        )

    def column_leakage_block(
        self,
        voltages: np.ndarray,
        global_start: int,
        column: int,
        mask: np.ndarray,
    ) -> np.ndarray:
        """Hamming-weight leakage for one column over one trace chunk.

        Mirrors :meth:`reduced_leakage_block`: the jitter seed is keyed
        on ``(column, global_start)``, matching the serial collector.
        """
        bits = self.sensor.sample_bits(
            voltages,
            seed=derive_seed(
                self.seed, "campaign-jitter", column, global_start
            ),
        )
        return hamming_weight_series(bits, mask)

    def collect_column_traces(
        self,
        num_traces: int,
        chunk_size: int = TRACE_CHUNK,
    ) -> Dict[str, np.ndarray]:
        """Reduced traces for all four last-round column cycles.

        The 150 MHz sensor captures one endpoint word per last-round
        cycle; this collects the Hamming-weight reduction for each of
        the four cycles — the input to the full 16-byte key recovery
        (:mod:`repro.attacks.full_key`).

        Returns:
            dict with ``"ciphertexts"`` (N, 16) and ``"leakage"``
            (N, 4).
        """
        if num_traces < 2:
            raise ValueError("need at least 2 traces")
        mask = self.characterization.census.ro_sensitive
        if not mask.any():
            raise RuntimeError("no sensitive bits to reduce over")
        ciphertexts = random_ciphertexts(
            num_traces, seed=derive_seed(self.seed, "campaign-ct")
        )
        voltages = self.leakage.column_voltages(
            ciphertexts,
            self.cipher.last_round_key,
            seed=derive_seed(self.seed, "campaign-noise"),
        )
        leakage = np.empty((num_traces, 4), dtype=np.float64)
        for column in range(4):
            for start in range(0, num_traces, chunk_size):
                end = min(start + chunk_size, num_traces)
                leakage[start:end, column] = self.column_leakage_block(
                    voltages[start:end, column], start, column, mask
                )
        return {"ciphertexts": ciphertexts, "leakage": leakage}

    def attack_full_key(
        self,
        num_traces: int,
        target_bit: int = DEFAULT_TARGET_BIT,
    ) -> "FullKeyResult":
        """Recover all 16 bytes of the last round key (paper extension).

        Collects column-resolved traces and runs the per-byte CPA of
        :func:`repro.attacks.full_key.recover_last_round_key`.
        """
        from repro.attacks.full_key import recover_last_round_key

        data = self.collect_column_traces(num_traces)
        return recover_last_round_key(
            data["leakage"],
            data["ciphertexts"],
            target_bit=target_bit,
            correct_key=self.cipher.last_round_key,
        )

    def attack_with_tdc(
        self,
        num_traces: int,
        tdc: Optional[TDCSensor] = None,
        bit: Optional[int] = None,
        target_byte: int = DEFAULT_TARGET_BYTE,
        target_bit: int = DEFAULT_TARGET_BIT,
        checkpoints: Optional[Sequence[int]] = None,
    ) -> CPAResult:
        """Baseline: same campaign, measured with a TDC instead.

        Args:
            bit: if given, use only that TDC tap register (Fig. 11);
                otherwise the decoded thermometer value (Fig. 9).
        """
        sensor = tdc or TDCSensor()
        ciphertexts = random_ciphertexts(
            num_traces, seed=derive_seed(self.seed, "campaign-ct")
        )
        voltages = self.leakage.voltages(
            ciphertexts,
            self.cipher.last_round_key,
            seed=derive_seed(self.seed, "campaign-noise"),
        )
        if bit is None:
            leakage = sensor.sample_scalar(
                voltages, seed=derive_seed(self.seed, "tdc")
            ).astype(np.float64)
        else:
            leakage = sensor.single_bit(
                voltages, bit=bit, seed=derive_seed(self.seed, "tdc")
            ).astype(np.float64)
        hypotheses = single_bit_hypothesis(
            ciphertexts[:, target_byte], bit=target_bit
        )
        return run_cpa(
            leakage,
            hypotheses,
            checkpoints=checkpoints,
            correct_key=self.cipher.last_round_key[target_byte],
        )

    def attack_with_ro_counter(
        self,
        num_traces: int,
        ro_sensor: Optional[ROSensor] = None,
        target_byte: int = DEFAULT_TARGET_BYTE,
        target_bit: int = DEFAULT_TARGET_BIT,
        checkpoints: Optional[Sequence[int]] = None,
    ) -> CPAResult:
        """Baseline with the asynchronous RO-counter sensor (Fig. 1 left).

        The RO counter integrates over its whole counting window (1 us
        by default), so the 6.7 ns last-round sample that carries the
        secret is diluted by the window-to-sample ratio before the
        counter even quantizes it — the reason loop-based sensors are
        only suitable for "low speed power analysis attacks" (Sec. II)
        and the paper measures against a TDC instead.
        """
        sensor = ro_sensor or ROSensor()
        ciphertexts = random_ciphertexts(
            num_traces, seed=derive_seed(self.seed, "campaign-ct")
        )
        voltages = self.leakage.voltages(
            ciphertexts,
            self.cipher.last_round_key,
            seed=derive_seed(self.seed, "campaign-noise"),
        )
        # Window-average dilution: the informative sample occupies one
        # sensor sample period of the counting window.
        sample_period_s = 1.0 / 150e6
        dilution = min(1.0, sample_period_s / sensor.window_s)
        averaged = (
            self.leakage.v_idle
            + (voltages - self.leakage.v_idle) * dilution
        )
        leakage = sensor.sample_scalar(
            averaged, seed=derive_seed(self.seed, "ro-counter")
        ).astype(np.float64)
        hypotheses = single_bit_hypothesis(
            ciphertexts[:, target_byte], bit=target_bit
        )
        return run_cpa(
            leakage,
            hypotheses,
            checkpoints=checkpoints,
            correct_key=self.cipher.last_round_key[target_byte],
        )

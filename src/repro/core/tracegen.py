"""End-to-end physical trace generation: plaintext to supply voltage.

The CPA campaigns in :mod:`repro.core.attack` use the *analytical*
single-sample leakage model (:class:`repro.aes.leakage.LeakageModel`):
the supply voltage at the aligned sensor sample is written directly as
``v_idle - droop_per_bit * activity + noise``.  This module provides
the *physical* alternative: every trace is simulated through the full
chain the paper describes —

1. encrypt the plaintext through the 32-bit datapath model and record
   the per-cycle state-register Hamming distance;
2. convert the activity into a current waveform at the PDN sample rate
   (:func:`repro.pdn.aggressors.aes_current_waveform_batch`);
3. integrate the shared RLC droop response
   (:meth:`repro.pdn.model.PDNModel.integrate_batch`) and add the
   *local* IR drop of the victim region, which tracks the per-cycle
   current directly (the package RLC is far too slow to resolve
   individual 10 ns cycles — the cycle-resolution component of the
   supply seen by a neighbouring sensor is resistive);
4. add ambient supply noise;
5. optionally distort the sample axis the way a real acquisition
   would (:class:`repro.preprocess.spec.MisalignmentSpec`): per-trace
   trigger misalignment, per-trace clock drift, and dropped/duplicated
   sample glitches.  The distortion draws from its own seeded RNG
   streams (``"tracegen-misalign-*"``), strictly separate from the
   ambient-noise stream, so every configuration without a misalignment
   spec remains bit-identical to pre-existing outputs.

Every stage has a vectorized fast path and a per-trace pure-Python
reference (:meth:`PhysicalTraceGenerator.generate_reference` runs the
reference cipher, the scalar waveform builder, and the recurrence
loop).  Both draw the identical noise block, so the fast path is
asserted bit-identical in the test suite and in the e2e benchmark
before any throughput number is recorded.

With the default electrical constants the cycle-resolution leakage is
``local_resistance_ohm * current_per_bit_a = 5e-4`` V per switching
bit — the same scale as ``LeakageModel.droop_per_bit_v`` — so sensors
calibrated against the analytical model behave identically on
physically generated traces.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.aes.aes128 import AES128
from repro.aes.batch import (
    BatchedAES128,
    as_state_array,
    cycle_activity_and_ciphertexts,
)
from repro.aes.datapath import DatapathSchedule, column_hd
from repro.util.bits import hamming_weight
from repro.pdn.aggressors import (
    aes_current_waveform,
    aes_current_waveform_batch,
)
from repro.pdn.model import PDNModel
from repro.preprocess.spec import MisalignmentSpec
from repro.util.rng import make_rng

__all__ = ["PhysicalTraceGenerator", "random_plaintexts"]


def random_plaintexts(num_traces: int, seed: int = 0) -> np.ndarray:
    """Uniformly random plaintext blocks ``(N, 16)`` uint8."""
    rng = make_rng(seed, "plaintexts")
    return rng.integers(0, 256, size=(num_traces, 16), dtype=np.uint8)


class PhysicalTraceGenerator:
    """Simulates the supply-voltage waveform of whole encryptions.

    Args:
        cipher: victim cipher (ground truth for the batched datapath).
        pdn: shared PDN; its sample rate fixes the samples-per-cycle
            ratio (150 MHz sampling of a 100 MHz AES = 1.5).  Ambient
            noise is drawn here (seeded per call), not by the PDN.
        schedule: datapath timing (cycles per round, AES clock).
        start_sample: sample at which the encryption starts.
        num_samples: waveform length; must cover the whole encryption
            so the last-round cycles are observable.
        current_per_bit_a / static_current_a: AES current model (as in
            :func:`repro.pdn.aggressors.aes_current_waveform`).
        local_resistance_ohm: resistive path converting the victim's
            instantaneous current into local supply droop — the
            cycle-resolution leakage component.
        noise_sigma_v: ambient per-sample supply noise.
        value_weight / transition_weight: weights of the combinational
            (Hamming-weight) and register-overwrite (Hamming-distance)
            components of each cycle's switching activity; the defaults
            match :class:`repro.aes.leakage.LeakageModel`.
        misalignment: optional acquisition-time distortion of the
            sample axis (trigger jitter, clock drift, sampling
            glitches).  None (the default) leaves every output exactly
            as before.
    """

    def __init__(
        self,
        cipher: AES128,
        pdn: Optional[PDNModel] = None,
        schedule: DatapathSchedule = DatapathSchedule(),
        start_sample: int = 4,
        num_samples: int = 72,
        current_per_bit_a: float = 6.25e-3,
        static_current_a: float = 0.02,
        local_resistance_ohm: float = 0.08,
        noise_sigma_v: float = 8.0e-4,
        value_weight: float = 1.0,
        transition_weight: float = 0.5,
        misalignment: Optional[MisalignmentSpec] = None,
    ):
        if misalignment is not None and not isinstance(
            misalignment, MisalignmentSpec
        ):
            raise TypeError(
                "misalignment must be a MisalignmentSpec, got %r"
                % (misalignment,)
            )
        self.misalignment = misalignment
        self.cipher = cipher
        self.pdn = pdn or PDNModel()
        self.schedule = schedule
        self.start_sample = int(start_sample)
        self.num_samples = int(num_samples)
        self.current_per_bit_a = float(current_per_bit_a)
        self.static_current_a = float(static_current_a)
        self.local_resistance_ohm = float(local_resistance_ohm)
        self.noise_sigma_v = float(noise_sigma_v)
        self.value_weight = float(value_weight)
        self.transition_weight = float(transition_weight)
        if self.start_sample < 0:
            raise ValueError("start_sample must be non-negative")
        end = int(round(
            self.start_sample
            + self.schedule.total_cycles * self.samples_per_cycle
        ))
        if end > self.num_samples:
            raise ValueError(
                "num_samples=%d cannot hold a whole encryption "
                "(needs %d samples from start_sample=%d)"
                % (self.num_samples, end, self.start_sample)
            )

    @property
    def samples_per_cycle(self) -> float:
        """PDN samples per AES clock cycle."""
        return self.pdn.sample_rate_hz / self.schedule.clock_hz

    def _batched_cipher(self) -> BatchedAES128:
        """Per-instance :class:`BatchedAES128`, built once.

        The expansion is cheap but sits on the per-chunk hot path of
        sharded campaigns; caching it makes worker-side chunk loops
        re-derive nothing per chunk.  Lazy so unpickled generators
        (process-pool fan-out) rebuild it on first use.
        """
        cached = self.__dict__.get("_batched_aes")
        if cached is None:
            cached = BatchedAES128.from_cipher(self.cipher)
            self.__dict__["_batched_aes"] = cached
        return cached

    def working_set_bytes_per_trace(self) -> int:
        """Approximate per-trace footprint of :meth:`generate`.

        Counts the big per-trace intermediates of the batched pipeline:
        the 12 round states (uint8), the per-cycle activity row
        (float64), and the four waveform-length float64 arrays
        (currents, droop, clean voltages, noise).  Used by
        :func:`repro.experiments.parallel.plan_chunk_size` to size
        generation chunks to a cache-resident working set.
        """
        return int(
            12 * 16
            + 8 * self.schedule.total_cycles
            + 4 * 8 * self.num_samples
        )

    def last_round_sample_indices(self) -> np.ndarray:
        """Waveform sample aligned with each of the 4 last-round cycles.

        Index ``c`` is the first sample of last-round cycle ``c`` — the
        instant the sensor's measure cycle latches while column ``c``
        of the state register is being overwritten.
        """
        return np.array(
            [
                int(round(self.start_sample + cycle * self.samples_per_cycle))
                for cycle in self.schedule.last_round_cycles()
            ],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Fast batched path
    # ------------------------------------------------------------------
    def generate(
        self, plaintexts: np.ndarray, seed: int = 0
    ) -> Dict[str, np.ndarray]:
        """Simulate a batch of encryptions end to end (vectorized).

        Args:
            plaintexts: ``(N, 16)`` uint8 blocks.
            seed: ambient-noise seed for this batch.

        Returns:
            dict with ``"ciphertexts"`` (N, 16) uint8 and
            ``"voltages"`` (N, num_samples) float.
        """
        data = self.generate_deterministic(plaintexts)
        data["voltages"] = self._acquire(data["voltages"], seed)
        return data

    def generate_deterministic(
        self, plaintexts: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """The noise-free part of :meth:`generate`.

        Every stage here (batched AES, waveform building, PDN
        integration) is elementwise or per-row, so row ``i`` of the
        output depends only on ``plaintexts[i]``: concatenating the
        plaintexts of several requests, running one deterministic pass,
        and slicing the rows back out is bit-identical to running each
        request separately.  The service batching window
        (:mod:`repro.service.scheduler`) relies on exactly this
        property to coalesce compatible trace-generation jobs into a
        single batched-AES call.
        """
        blocks = as_state_array(plaintexts)
        # Fused kernel op: per-cycle activity and ciphertexts in one
        # pass (the native backend never materializes the (N, 12, 16)
        # round-state tensor this loop used to allocate per chunk).
        activity, ciphertexts = cycle_activity_and_ciphertexts(
            self._batched_cipher(),
            blocks,
            self.schedule,
            value_weight=self.value_weight,
            transition_weight=self.transition_weight,
        )
        currents = aes_current_waveform_batch(
            activity,
            self.num_samples,
            self.start_sample,
            self.samples_per_cycle,
            current_per_bit_a=self.current_per_bit_a,
            static_current_a=self.static_current_a,
        )
        droop = self.pdn.integrate_batch(currents)
        return {
            "ciphertexts": ciphertexts,
            "voltages": (
                self.pdn.params.nominal_voltage
                - droop
                - self.local_resistance_ohm * currents
            ),
        }

    def add_ambient_noise(
        self, voltages: np.ndarray, seed: int
    ) -> np.ndarray:
        """Add the seeded ambient supply noise block to clean voltages.

        The noise block's shape and generator stream depend only on
        ``seed`` and ``voltages.shape``, so applying it to a slice of a
        larger deterministic batch equals applying it to the same
        traces generated alone.
        """
        if self.noise_sigma_v <= 0:
            return voltages
        rng = make_rng(seed, "tracegen-noise")
        return voltages + rng.normal(
            0.0, self.noise_sigma_v, size=voltages.shape
        )

    def _acquire(self, voltages: np.ndarray, seed: int) -> np.ndarray:
        """Shared acquisition tail: ambient noise, then misalignment.

        Both the fast batched path and the per-trace reference path end
        here, so fast==reference bit-identity holds with or without a
        misalignment spec.
        """
        return self.apply_misalignment(
            self.add_ambient_noise(voltages, seed), seed
        )

    def apply_misalignment(
        self,
        voltages: np.ndarray,
        seed: int,
        spec: Optional[MisalignmentSpec] = None,
    ) -> np.ndarray:
        """Distort the sample axis per the (or a given) misalignment spec.

        Each trace is re-read at warped sample positions built from
        three independent seeded streams —
        ``"tracegen-misalign-shift"`` (per-trace trigger offset),
        ``"tracegen-misalign-drift"`` (per-trace clock-rate factor) and
        ``"tracegen-misalign-glitch"`` (per-sample drop/duplicate
        events) — via edge-clamped linear interpolation.  Like the
        ambient-noise block, the draws depend only on ``(seed, shape)``,
        so chunk-aligned sharding reproduces the identical distortion;
        integer uniform shifts gather samples bitwise, which is what
        lets correlation alignment undo them exactly.

        Returns ``voltages`` unchanged (same object) when no spec is
        active — the pre-existing pipeline is untouched.
        """
        spec = self.misalignment if spec is None else spec
        if spec is None or not spec.enabled:
            return voltages
        num_traces, num_samples = voltages.shape
        positions = np.broadcast_to(
            np.arange(num_samples, dtype=np.float64),
            (num_traces, num_samples),
        )
        fractional = False
        if spec.glitch_rate > 0:
            rng = make_rng(seed, "tracegen-misalign-glitch")
            draw = rng.random(size=(num_traces, num_samples))
            # A dropped sample advances the source by 2, a duplicated
            # one re-reads it; the first output sample stays anchored.
            step = np.ones((num_traces, num_samples))
            step[draw < spec.glitch_rate / 2] = 2.0
            step[draw >= 1.0 - spec.glitch_rate / 2] = 0.0
            positions = np.cumsum(step, axis=1) - step[:, :1]
        if spec.drift > 0:
            rng = make_rng(seed, "tracegen-misalign-drift")
            factors = rng.uniform(
                1.0 - spec.drift, 1.0 + spec.drift, size=num_traces
            )
            positions = positions * factors[:, None]
            fractional = True
        if spec.shift_mode == "uniform":
            rng = make_rng(seed, "tracegen-misalign-shift")
            half = int(round(spec.shift_samples))
            shifts = rng.integers(
                -half, half + 1, size=num_traces
            ).astype(np.float64)
            positions = positions + shifts[:, None]
        elif spec.shift_mode == "gaussian":
            rng = make_rng(seed, "tracegen-misalign-shift")
            shifts = rng.normal(0.0, spec.shift_samples, size=num_traces)
            positions = positions + shifts[:, None]
            fractional = True
        if not fractional:
            # Integer warps are pure gathers: clamp and take, so the
            # surviving samples keep their exact bit patterns.
            indices = np.clip(
                positions.astype(np.int64), 0, num_samples - 1
            )
            return np.take_along_axis(voltages, indices, axis=1)
        lower = np.floor(positions)
        frac = positions - lower
        low = np.clip(lower.astype(np.int64), 0, num_samples - 1)
        high = np.clip(lower.astype(np.int64) + 1, 0, num_samples - 1)
        return (
            np.take_along_axis(voltages, low, axis=1) * (1.0 - frac)
            + np.take_along_axis(voltages, high, axis=1) * frac
        )

    # ------------------------------------------------------------------
    # Per-trace reference path
    # ------------------------------------------------------------------
    def generate_reference(
        self, plaintexts: np.ndarray, seed: int = 0
    ) -> Dict[str, np.ndarray]:
        """Per-trace pure-Python counterpart of :meth:`generate`.

        Runs the reference cipher, the scalar waveform builder, and the
        recurrence-loop integrator for every trace, drawing the same
        noise block — bit-identical to the batched path, ~100x slower.
        """
        blocks = as_state_array(plaintexts)
        num_traces = blocks.shape[0]
        ciphertexts = np.empty((num_traces, 16), dtype=np.uint8)
        currents = np.empty((num_traces, self.num_samples))
        droop = np.empty((num_traces, self.num_samples))
        for t in range(num_traces):
            states = self.cipher.round_states(bytes(blocks[t]))
            ciphertexts[t] = states[11]
            activity = []
            for cycle in range(self.schedule.total_cycles):
                round_index = cycle // self.schedule.cycles_per_round
                column = (cycle % self.schedule.cycles_per_round) % 4
                value = sum(
                    hamming_weight(states[round_index][4 * column + row])
                    for row in range(4)
                )
                transition = column_hd(
                    states[round_index], states[round_index + 1], column
                )
                activity.append(
                    self.value_weight * value
                    + self.transition_weight * transition
                )
            currents[t] = aes_current_waveform(
                activity,
                self.num_samples,
                self.start_sample,
                self.samples_per_cycle,
                current_per_bit_a=self.current_per_bit_a,
                static_current_a=self.static_current_a,
            )
            droop[t] = self.pdn._integrate_reference(currents[t])
        return {
            "ciphertexts": ciphertexts,
            "voltages": self._finish(num_traces, currents, droop, seed),
        }

    def _finish(
        self,
        num_traces: int,
        currents: np.ndarray,
        droop: np.ndarray,
        seed: int,
    ) -> np.ndarray:
        """Shared tail: nominal minus droops, then the acquisition stage
        (seeded noise block, then any configured misalignment)."""
        voltages = (
            self.pdn.params.nominal_voltage
            - droop
            - self.local_resistance_ohm * currents
        )
        return self._acquire(voltages, seed)

"""ATPG-style search for sensor-activation stimuli.

The paper's Discussion (Sec. VI) notes that for complex circuits an
attacker can use Automatic Test Pattern Generation and path-delay
testing to find input patterns that activate long paths.  This module
implements that search for arbitrary registry-style circuits:

* :func:`find_activation_stimulus` — randomized search plus greedy
  bit-flip refinement for a (reset, measure) pair that maximizes an
  activation objective;
* :class:`ActivationObjective` variants — maximize a single endpoint's
  settle time (single-bit sensors) or the number of endpoints whose
  last transition falls inside the sampling window (many-bit sensors).

The ALU/C6288 stimuli shipped with the circuit registry are the
hand-derived patterns of the paper; the ablation bench
``test_abl_atpg_stimuli`` shows the automated search recovers stimuli
of comparable quality without domain knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.timing.delay_model import DelayAnnotation
from repro.timing.event_sim import TimedSimulator, endpoint_settle_times
from repro.util.rng import make_rng

InputAssignment = Dict[str, int]


@dataclass(frozen=True)
class StimulusCandidate:
    """One evaluated (reset, measure) pair.

    Attributes:
        reset_inputs / measure_inputs: the stimulus pair.
        score: objective value (higher is better).
        settle_times_ps: per-endpoint last-transition times.
    """

    reset_inputs: InputAssignment
    measure_inputs: InputAssignment
    score: float
    settle_times_ps: Dict[str, float]


class ActivationObjective:
    """Scores a stimulus pair from its endpoint settle times."""

    def score(self, settle_times_ps: Mapping[str, float]) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class MaxEndpointDelay(ActivationObjective):
    """Maximize one endpoint's settle time (single-bit sensor)."""

    endpoint: str

    def score(self, settle_times_ps: Mapping[str, float]) -> float:
        return float(settle_times_ps[self.endpoint])


@dataclass(frozen=True)
class WindowCoverage(ActivationObjective):
    """Maximize endpoints settling inside the sampling window.

    Endpoints whose last transition lands within
    ``[window_lo_ps, window_hi_ps]`` become sensitive sensor bits at
    the corresponding overclock; this objective counts them.
    """

    window_lo_ps: float
    window_hi_ps: float

    def score(self, settle_times_ps: Mapping[str, float]) -> float:
        return float(
            sum(
                1
                for t in settle_times_ps.values()
                if self.window_lo_ps <= t <= self.window_hi_ps
            )
        )


def _random_assignment(
    inputs: Sequence[str], rng: np.random.Generator
) -> InputAssignment:
    return {net: int(rng.integers(0, 2)) for net in inputs}


def _evaluate(
    simulator: TimedSimulator,
    endpoints: Sequence[str],
    objective: ActivationObjective,
    reset_inputs: InputAssignment,
    measure_inputs: InputAssignment,
) -> StimulusCandidate:
    settle = endpoint_settle_times(
        simulator, reset_inputs, measure_inputs, endpoints
    )
    return StimulusCandidate(
        reset_inputs=dict(reset_inputs),
        measure_inputs=dict(measure_inputs),
        score=objective.score(settle),
        settle_times_ps=settle,
    )


def find_activation_stimulus(
    annotation: DelayAnnotation,
    endpoints: Sequence[str],
    objective: ActivationObjective,
    attempts: int = 64,
    refine_steps: int = 128,
    seed: int = 0,
) -> StimulusCandidate:
    """Search for a high-activation (reset, measure) stimulus pair.

    Strategy: ``attempts`` random pairs seed the search; the best pair
    is then refined by greedy single-bit flips (on either the reset or
    the measure vector) for ``refine_steps`` proposals, keeping any
    flip that does not decrease the objective.

    Args:
        annotation: placed netlist (delays matter for the objective).
        endpoints: observed endpoint nets.
        objective: scoring strategy.
        attempts: random restarts.
        refine_steps: greedy refinement proposals.
        seed: search seed.

    Returns:
        the best :class:`StimulusCandidate` found.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    netlist = annotation.netlist
    simulator = TimedSimulator(annotation)
    rng = make_rng(seed, "atpg", netlist.name)
    inputs = list(netlist.inputs)

    best: Optional[StimulusCandidate] = None
    for _ in range(attempts):
        candidate = _evaluate(
            simulator,
            endpoints,
            objective,
            _random_assignment(inputs, rng),
            _random_assignment(inputs, rng),
        )
        if best is None or candidate.score > best.score:
            best = candidate
    assert best is not None  # attempts >= 1

    for _ in range(refine_steps):
        reset_inputs = dict(best.reset_inputs)
        measure_inputs = dict(best.measure_inputs)
        net = inputs[int(rng.integers(0, len(inputs)))]
        if rng.integers(0, 2):
            measure_inputs[net] ^= 1
        else:
            reset_inputs[net] ^= 1
        candidate = _evaluate(
            simulator, endpoints, objective, reset_inputs, measure_inputs
        )
        if candidate.score >= best.score:
            best = candidate
    return best


def stimulus_quality(
    annotation: DelayAnnotation,
    reset_inputs: InputAssignment,
    measure_inputs: InputAssignment,
    endpoints: Sequence[str],
    window_lo_ps: float,
    window_hi_ps: float,
) -> Dict[str, float]:
    """Report activation metrics of a given stimulus pair.

    Returns a dict with the toggling endpoint count, the window
    coverage count and the maximum settle time — used to compare
    hand-derived and ATPG-found stimuli.
    """
    simulator = TimedSimulator(annotation)
    settle = endpoint_settle_times(
        simulator, reset_inputs, measure_inputs, endpoints
    )
    times = np.array(list(settle.values()))
    return {
        "toggling": float((times > 0).sum()),
        "in_window": float(
            ((times >= window_lo_ps) & (times <= window_hi_ps)).sum()
        ),
        "max_settle_ps": float(times.max() if times.size else 0.0),
    }

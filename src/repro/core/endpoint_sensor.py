"""The benign-logic voltage sensor (the paper's core contribution).

:class:`BenignSensor` turns an ordinary circuit — the registry's ALU or
C6288 multiplier, or any user-provided netlist with a reset/measure
stimulus pair — into a voltage sensor:

1. the circuit is "implemented" (placed and delay-annotated) for its
   legitimate 50 MHz clock;
2. the attacker clocks it at ``overclock_mhz`` (300 MHz) and alternates
   the *reset* and *measure* stimuli on consecutive cycles, so every
   second cycle latches partially-propagated endpoint values — an
   effective sampling rate of half the overclock (150 MHz);
3. the latched endpoint word, post-processed by
   :mod:`repro.core.postprocess`, tracks supply-voltage fluctuations.

The sensor is *stealthy*: its netlist is exactly the benign circuit's
(see the defense benches), and its stimuli are ordinary data inputs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.circuits.library import CircuitSpec, get_circuit_spec
from repro.core.calibration import SensorCalibration
from repro.core.calibration_cache import cached_calibrate_endpoints
from repro.sensors.base import VoltageSensor
from repro.timing.delay_model import DelayAnnotation
from repro.timing.event_sim import TimedSimulator
from repro.timing.sta import analyze_timing
from repro.timing.techmap import FpgaImplementation, fpga_annotate
from repro.util.rng import derive_seed, make_rng

#: The paper's overclock: benign circuits driven at 300 MHz.
DEFAULT_OVERCLOCK_MHZ = 300.0
#: Default per-register (local) sampling jitter (nominal-scale ps).
DEFAULT_JITTER_PS = 45.0
#: Default common-mode capture-clock jitter shared by all registers.
#: Because it is identical for every endpoint in a cycle, it is not
#: reduced by combining bits — the reason the paper's Hamming-weight
#: attack (150k traces) is only modestly better than its single-bit
#: attack (200k traces).
DEFAULT_SHARED_JITTER_PS = 85.0


@dataclass
class BenignSensorInstance:
    """One placed copy of the benign circuit.

    The C6288 experiment deploys two instances; each gets its own
    placement (seed) and therefore its own waveform bank.
    """

    annotation: DelayAnnotation
    calibration: SensorCalibration
    reset_inputs: Mapping[str, int]
    measure_inputs: Mapping[str, int]

    @property
    def num_bits(self) -> int:
        return self.calibration.num_bits


class BenignSensor(VoltageSensor):
    """Voltage sensor improvised from benign logic.

    Build via :meth:`from_spec` (registry circuits) or by passing
    pre-calibrated instances.

    Example:
        >>> sensor = BenignSensor.from_spec(get_circuit_spec("alu"))
        >>> sensor.num_bits
        192
    """

    def __init__(
        self,
        instances: Sequence[BenignSensorInstance],
        jitter_ps: float = DEFAULT_JITTER_PS,
        shared_jitter_ps: float = DEFAULT_SHARED_JITTER_PS,
        name: str = "benign-sensor",
    ):
        if not instances:
            raise ValueError("need at least one circuit instance")
        self._instances = list(instances)
        self.jitter_ps = float(jitter_ps)
        self.shared_jitter_ps = float(shared_jitter_ps)
        self.name = name

    @classmethod
    def from_spec(
        cls,
        spec: CircuitSpec,
        implementation_seed: int = 0,
        overclock_mhz: float = DEFAULT_OVERCLOCK_MHZ,
        jitter_ps: float = DEFAULT_JITTER_PS,
        shared_jitter_ps: float = DEFAULT_SHARED_JITTER_PS,
        implementation: Optional[FpgaImplementation] = None,
    ) -> "BenignSensor":
        """Implement, calibrate and wrap a registry circuit.

        Each of ``spec.instances`` copies receives a distinct placement
        derived from ``implementation_seed``.
        """
        if overclock_mhz <= 0:
            raise ValueError("overclock must be positive")
        sample_period_ps = 1e6 / overclock_mhz
        instances: List[BenignSensorInstance] = []
        for copy in range(spec.instances):
            seed = derive_seed(implementation_seed, spec.name, copy)
            if implementation is None:
                impl = FpgaImplementation(seed=seed)
            else:
                impl = dataclasses.replace(implementation, seed=seed)
            netlist = spec.build()
            annotation = fpga_annotate(netlist, impl)
            calibration = cached_calibrate_endpoints(
                annotation,
                spec.reset_inputs,
                spec.measure_inputs,
                spec.endpoint_nets,
                sample_period_ps,
                context=(spec.name, seed),
            )
            instances.append(
                BenignSensorInstance(
                    annotation=annotation,
                    calibration=calibration,
                    reset_inputs=spec.reset_inputs,
                    measure_inputs=spec.measure_inputs,
                )
            )
        return cls(
            instances,
            jitter_ps=jitter_ps,
            shared_jitter_ps=shared_jitter_ps,
            name=spec.name,
        )

    @classmethod
    def from_name(cls, circuit_name: str, **kwargs) -> "BenignSensor":
        """Shorthand: build from a circuit registry name."""
        return cls.from_spec(get_circuit_spec(circuit_name), **kwargs)

    # ------------------------------------------------------------------
    # VoltageSensor interface (fast calibrated path)
    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        """Total endpoint bits across all instances."""
        return sum(inst.num_bits for inst in self._instances)

    @property
    def instances(self) -> List[BenignSensorInstance]:
        return list(self._instances)

    @property
    def sample_period_ps(self) -> float:
        return self._instances[0].calibration.sample_period_ps

    def sample_bits(
        self,
        voltages: np.ndarray,
        seed: int = 0,
        reference: bool = False,
    ) -> np.ndarray:
        """Latched endpoint bits per measure cycle (N, num_bits).

        Instance outputs are concatenated in instance order, matching
        the paper's "32-bit outputs of the multipliers are concatenated
        into a 64-bit number".  All instances share the same capture
        clock, so the common-mode jitter draw is shared across them.

        Args:
            voltages: (N,) supply voltage during each measure cycle.
            seed: jitter seed.
            reference: route sampling through the legacy per-endpoint
                loop (:meth:`SensorCalibration.sample_bits_reference`)
                instead of the vectorized waveform bank.  Both paths
                consume the same jitter stream and are bit-identical;
                the reference path exists for validation and as the
                baseline of the e2e performance suite.
        """
        v = np.asarray(voltages, dtype=float)
        if self.shared_jitter_ps > 0:
            rng = make_rng(derive_seed(seed, self.name, "shared-jitter"))
            shared = rng.normal(0.0, self.shared_jitter_ps, size=v.shape[0])
        else:
            shared = None
        blocks = [
            (
                inst.calibration.sample_bits_reference
                if reference
                else inst.calibration.sample_bits
            )(
                v,
                jitter_ps=self.jitter_ps,
                seed=derive_seed(seed, self.name, "jitter", index),
                shared_jitter_ps=shared,
            )
            for index, inst in enumerate(self._instances)
        ]
        return np.concatenate(blocks, axis=1)

    # ------------------------------------------------------------------
    # Ground-truth path (gate-level, slow; used for validation)
    # ------------------------------------------------------------------
    def sample_bits_gate_level(self, voltages: np.ndarray) -> np.ndarray:
        """Jitter-free gate-level re-simulation of :meth:`sample_bits`.

        Runs the event-driven simulator per cycle — exact but ~10^4x
        slower; the test suite uses it to validate the calibrated path.
        """
        v = np.asarray(voltages, dtype=float)
        columns: List[np.ndarray] = []
        for inst in self._instances:
            simulator = TimedSimulator(inst.annotation)
            nets = inst.calibration.endpoint_nets
            rows = np.empty((v.shape[0], len(nets)), dtype=np.uint8)
            for t, voltage in enumerate(v):
                snapshot = simulator.run_transition(
                    inst.reset_inputs,
                    inst.measure_inputs,
                    sample_time_ps=inst.calibration.sample_period_ps,
                    voltage=float(voltage),
                )
                rows[t] = snapshot.outputs(nets)
            columns.append(rows)
        return np.concatenate(columns, axis=1)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def legitimate_fmax_mhz(self) -> float:
        """Max clock the circuit legitimately meets (min over instances)."""
        return min(
            analyze_timing(inst.annotation).max_frequency_mhz
            for inst in self._instances
        )

    def overclock_factor(self) -> float:
        """Ratio of the attack clock to the legitimate fmax."""
        return (1e6 / self.sample_period_ps) / self.legitimate_fmax_mhz()

    def endpoint_settle_times_ps(self) -> np.ndarray:
        """Nominal settle time of every sensor bit (across instances)."""
        times: List[float] = []
        for inst in self._instances:
            times.extend(
                w.settle_time_ps for w in inst.calibration.waveforms
            )
        return np.array(times)

"""Keyed cache for gate-level sensor calibrations.

Calibrating one placed benign circuit means running the event-driven
simulator over the full reset→measure transition
(:func:`repro.timing.event_sim.endpoint_waveforms`) — fractions of a
second for the ALU, noticeably longer for the C6288 multiplier tree.
Experiment drivers, benches and the CLI all rebuild the same few
sensors over and over; this module memoizes the resulting
:class:`~repro.core.calibration.SensorCalibration` so the gate-level
run happens once per (circuit, implementation, overclock).

The cache key is a digest over everything the calibration depends on:

* a cache format version,
* caller context (circuit spec name, implementation seed),
* the sampling period (i.e. the overclock),
* both stimulus assignments and the endpoint list,
* the delay model parameters, and
* the exact per-gate delay table of the annotation.

Hashing the delay table makes the key self-validating: any change to
the placement model, cell library or routing draw changes the digest,
so a stale entry can never be returned for a different implementation.

Two layers:

* **in-process**: a plain dict, always on; repeated sensor builds in
  one process (test session, figure sweep) share one calibration
  object, including its lazily built waveform bank.
* **on-disk**: ``.npz`` files under ``$REPRO_CACHE_DIR``, only active
  when that variable is set (so ordinary runs never write outside the
  repo); entries survive across processes.

``REPRO_CALIBRATION_CACHE=0`` disables both layers.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.calibration import (
    EndpointWaveform,
    SensorCalibration,
    calibrate_endpoints,
)
from repro.timing.delay_model import DelayAnnotation

#: Bump when the on-disk layout or calibration semantics change.
CACHE_VERSION = 1

_MEMORY: Dict[str, SensorCalibration] = {}


@dataclass
class CacheStats:
    """Hit/miss counters (reset via :func:`clear_calibration_cache`)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0


_STATS = CacheStats()


def cache_enabled() -> bool:
    """False when ``REPRO_CALIBRATION_CACHE=0`` is exported."""
    return os.environ.get("REPRO_CALIBRATION_CACHE", "1") != "0"


def cache_dir() -> Optional[Path]:
    """On-disk cache directory, or None when disk caching is off."""
    value = os.environ.get("REPRO_CACHE_DIR")
    return Path(value) if value else None


def calibration_stats() -> CacheStats:
    """Current cache counters (shared process-wide)."""
    return _STATS


def clear_calibration_cache() -> None:
    """Drop the in-process layer and reset the counters."""
    _MEMORY.clear()
    _STATS.memory_hits = 0
    _STATS.disk_hits = 0
    _STATS.misses = 0


def calibration_cache_key(
    annotation: DelayAnnotation,
    reset_inputs: Mapping[str, int],
    measure_inputs: Mapping[str, int],
    endpoint_nets: Sequence[str],
    sample_period_ps: float,
    context: Sequence[object] = (),
) -> str:
    """Digest of every input the calibration result depends on."""
    digest = hashlib.sha256()
    header = {
        "version": CACHE_VERSION,
        "context": [str(item) for item in context],
        "sample_period_ps": float(sample_period_ps),
        "reset": sorted(
            (str(k), int(v)) for k, v in reset_inputs.items()
        ),
        "measure": sorted(
            (str(k), int(v)) for k, v in measure_inputs.items()
        ),
        "endpoints": [str(net) for net in endpoint_nets],
        "model": [
            annotation.model.nominal_voltage,
            annotation.model.threshold_voltage,
            annotation.model.alpha,
        ],
    }
    digest.update(json.dumps(header, sort_keys=True).encode())
    # Exact per-gate delay table, in a stable order.  This is what ties
    # the entry to one specific implementation run.
    for net in sorted(annotation.gate_delay_ps):
        digest.update(net.encode())
        digest.update(np.float64(annotation.gate_delay_ps[net]).tobytes())
    return digest.hexdigest()


def _disk_path(key: str, context: Sequence[object]) -> Optional[Path]:
    directory = cache_dir()
    if directory is None:
        return None
    prefix = "-".join(str(item) for item in context) or "calibration"
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in prefix)
    return directory / ("%s-%s.npz" % (safe, key[:16]))


def _save_to_disk(path: Path, calibration: SensorCalibration, key: str) -> None:
    lengths = [w.edge_times_ps.shape[0] for w in calibration.waveforms]
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        path,
        key=np.array(key),
        offsets=np.concatenate(([0], np.cumsum(lengths))).astype(np.int64),
        edge_times_ps=np.concatenate(
            [w.edge_times_ps for w in calibration.waveforms]
        ),
        values_after_edge=np.concatenate(
            [w.values_after_edge for w in calibration.waveforms]
        ).astype(np.uint8),
        nets=np.array([w.net for w in calibration.waveforms]),
        sample_period_ps=np.float64(calibration.sample_period_ps),
    )


def _load_from_disk(
    path: Path, key: str, annotation: DelayAnnotation
) -> Optional[SensorCalibration]:
    if not path.is_file():
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            if str(data["key"]) != key:
                return None
            offsets = data["offsets"]
            times = data["edge_times_ps"]
            values = data["values_after_edge"]
            nets = data["nets"]
            sample_period_ps = float(data["sample_period_ps"])
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return None
    waveforms: List[EndpointWaveform] = []
    for i, net in enumerate(nets):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        waveforms.append(
            EndpointWaveform(str(net), times[lo:hi], values[lo:hi])
        )
    return SensorCalibration(
        waveforms=waveforms,
        sample_period_ps=sample_period_ps,
        delay_model=annotation.model,
    )


def cached_calibrate_endpoints(
    annotation: DelayAnnotation,
    reset_inputs: Mapping[str, int],
    measure_inputs: Mapping[str, int],
    endpoint_nets: Sequence[str],
    sample_period_ps: float,
    context: Sequence[object] = (),
) -> SensorCalibration:
    """:func:`calibrate_endpoints` behind the two cache layers.

    Args:
        annotation / reset_inputs / measure_inputs / endpoint_nets /
            sample_period_ps: forwarded to the calibrator on a miss.
        context: human-readable key components (circuit spec name,
            implementation seed); they prefix the on-disk filename and
            are folded into the digest.

    Returns:
        the calibration; on an in-process hit this is the *same*
        object previous callers received (calibrations are read-only
        in normal use, and sharing reuses the precomputed bank).
    """
    if not cache_enabled():
        return calibrate_endpoints(
            annotation,
            reset_inputs,
            measure_inputs,
            endpoint_nets,
            sample_period_ps,
        )
    key = calibration_cache_key(
        annotation,
        reset_inputs,
        measure_inputs,
        endpoint_nets,
        sample_period_ps,
        context,
    )
    hit = _MEMORY.get(key)
    if hit is not None:
        _STATS.memory_hits += 1
        return hit
    path = _disk_path(key, context)
    if path is not None:
        loaded = _load_from_disk(path, key, annotation)
        if loaded is not None:
            _STATS.disk_hits += 1
            _MEMORY[key] = loaded
            return loaded
    _STATS.misses += 1
    calibration = calibrate_endpoints(
        annotation,
        reset_inputs,
        measure_inputs,
        endpoint_nets,
        sample_period_ps,
    )
    _MEMORY[key] = calibration
    if path is not None:
        _save_to_disk(path, calibration, key)
    return calibration

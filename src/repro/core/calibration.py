"""Endpoint calibration: from gate-level waveforms to a fast sensor model.

The gate-level timed simulator is exact but costs ~0.1 s per sampled
cycle on the C6288; CPA campaigns need 10^5–10^6 cycles.  Calibration
bridges the gap with a property of the delay model: **all gate delays
share one multiplicative voltage factor**, so the response of the whole
circuit to the reset→measure stimulus at supply ``v`` is the nominal
response with the time axis stretched by ``delay_factor(v)``.

Calibration therefore runs the event-driven simulator **once** at the
nominal voltage, records every endpoint's full transition history, and
afterwards evaluates, entirely in numpy::

    bit_i(trace t) = W_i( T / f(v_t) + jitter_{t,i} )

where ``W_i`` is endpoint i's recorded waveform, ``T`` the overclocked
sampling period, ``f`` the delay factor, and the jitter term models
capture-register sampling noise (clock jitter, local supply gradients,
metastability) that is *not* shared between endpoints.

The equivalence between this fast path and the gate-level simulator
(at zero jitter) is asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.waveform_bank import WaveformBank
from repro.timing.delay_model import DelayAnnotation, DelayModel
from repro.timing.event_sim import TimedSimulator, endpoint_waveforms
from repro.util.rng import make_rng


@dataclass
class EndpointWaveform:
    """Recorded nominal-voltage waveform of one endpoint.

    Attributes:
        net: endpoint net name.
        edge_times_ps: ascending transition times; the first entry is
            ``-inf`` carrying the initial (reset-settled) value.
        values_after_edge: endpoint value from each edge onwards.
    """

    net: str
    edge_times_ps: np.ndarray
    values_after_edge: np.ndarray

    def __post_init__(self) -> None:
        if self.edge_times_ps.shape != self.values_after_edge.shape:
            raise ValueError("edge arrays must have equal length")
        if np.any(np.diff(self.edge_times_ps) < 0):
            raise ValueError("edge times must be ascending")

    @property
    def initial_value(self) -> int:
        return int(self.values_after_edge[0])

    @property
    def settled_value(self) -> int:
        return int(self.values_after_edge[-1])

    @property
    def settle_time_ps(self) -> float:
        """Time of the last transition (0 when the endpoint is static)."""
        if self.edge_times_ps.shape[0] < 2:
            return 0.0
        return float(self.edge_times_ps[-1])

    @property
    def num_transitions(self) -> int:
        return int(self.edge_times_ps.shape[0] - 1)

    def value_at(self, times_ps: np.ndarray) -> np.ndarray:
        """Waveform value at each (nominal-scale) query time."""
        t = np.asarray(times_ps, dtype=float)
        index = np.searchsorted(self.edge_times_ps, t, side="right") - 1
        return self.values_after_edge[np.clip(index, 0, None)]

    def edges_in_window(self, lo_ps: float, hi_ps: float) -> int:
        """Number of transitions with time in ``[lo_ps, hi_ps]``."""
        times = self.edge_times_ps[1:]
        return int(np.sum((times >= lo_ps) & (times <= hi_ps)))


@dataclass
class SensorCalibration:
    """Calibrated waveform bank for one placed benign circuit.

    Attributes:
        waveforms: one :class:`EndpointWaveform` per observed endpoint,
            in sensor-bit order.
        sample_period_ps: real-time sampling period T (the overclocked
            measure-cycle length; 3333 ps at 300 MHz).
        delay_model: converts supply voltage to the time-stretch factor.
    """

    waveforms: List[EndpointWaveform]
    sample_period_ps: float
    delay_model: DelayModel
    _bank: Optional[WaveformBank] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_bits(self) -> int:
        return len(self.waveforms)

    @property
    def bank(self) -> WaveformBank:
        """Flattened vectorized sampling kernel (built lazily once)."""
        if self._bank is None:
            self._bank = WaveformBank(self.waveforms)
        return self._bank

    @property
    def endpoint_nets(self) -> List[str]:
        return [w.net for w in self.waveforms]

    def nominal_times(self, voltages: np.ndarray) -> np.ndarray:
        """Map supply voltages to nominal-scale sampling times T/f(v)."""
        factor = np.asarray(
            self.delay_model.delay_factor(np.asarray(voltages, dtype=float))
        )
        return self.sample_period_ps / factor

    def _query_times(
        self,
        voltages: np.ndarray,
        shared_jitter_ps: Optional[np.ndarray],
    ) -> np.ndarray:
        """Per-cycle query times with shared jitter folded in."""
        tau = self.nominal_times(voltages)
        if shared_jitter_ps is not None:
            shared = np.asarray(shared_jitter_ps, dtype=float)
            if shared.shape != tau.shape:
                raise ValueError(
                    "shared jitter shape %r does not match voltages %r"
                    % (shared.shape, tau.shape)
                )
            tau = tau + shared
        return tau

    def sample_bits(
        self,
        voltages: np.ndarray,
        jitter_ps: float = 0.0,
        seed: int = 0,
        shared_jitter_ps: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Latched endpoint values for a vector of per-cycle voltages.

        Sampling runs through the vectorized :class:`WaveformBank`
        kernel; :meth:`sample_bits_reference` keeps the original
        per-endpoint loop, and the test suite asserts both paths are
        bit-identical (the jitter draw consumes the same generator
        stream in both).

        Args:
            voltages: (N,) supply voltage during each measure cycle.
            jitter_ps: sigma of per-(cycle, endpoint) Gaussian sampling
                jitter, in nominal-scale picoseconds.  Models noise
                local to each capture register.
            seed: jitter seed.
            shared_jitter_ps: optional (N,) per-cycle time offset added
                to every endpoint equally — capture-clock jitter, which
                is common-mode across the register bank and therefore
                does not average out over bits.  Must match the shape
                of ``voltages``.

        Returns:
            uint8 array (N, num_bits).
        """
        tau = self._query_times(voltages, shared_jitter_ps)
        return self.bank.sample(tau, jitter_ps=jitter_ps, seed=seed)

    def sample_bits_reference(
        self,
        voltages: np.ndarray,
        jitter_ps: float = 0.0,
        seed: int = 0,
        shared_jitter_ps: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Legacy per-endpoint sampling loop (reference implementation).

        Kept as the ground truth the bank kernel is validated against;
        see :meth:`sample_bits` for the argument contract.
        """
        tau = self._query_times(voltages, shared_jitter_ps)
        n = tau.shape[0]
        bits = np.empty((n, self.num_bits), dtype=np.uint8)
        rng = make_rng(seed, "endpoint-jitter") if jitter_ps > 0 else None
        for i, waveform in enumerate(self.waveforms):
            if rng is not None:
                query = tau + rng.normal(0.0, jitter_ps, size=n)
            else:
                query = tau
            bits[:, i] = waveform.value_at(query)
        return bits

    def voltage_window(
        self, v_low: float, v_high: float
    ) -> Tuple[float, float]:
        """Nominal-time window swept by voltages in ``[v_low, v_high]``."""
        if v_low > v_high:
            raise ValueError("v_low must not exceed v_high")
        lo = self.sample_period_ps / self.delay_model.delay_factor(v_low)
        hi = self.sample_period_ps / self.delay_model.delay_factor(v_high)
        return float(lo), float(hi)

    def potentially_sensitive(
        self, v_low: float, v_high: float, margin_ps: float = 0.0
    ) -> np.ndarray:
        """Mask of endpoints with an edge inside the voltage window.

        A fast analytical predictor of which bits *can* toggle when the
        supply sweeps ``[v_low, v_high]`` (jitter widens the window by
        ``margin_ps`` on both sides); the empirical census in
        :mod:`repro.core.postprocess` measures which ones actually do.
        """
        lo, hi = self.voltage_window(v_low, v_high)
        return np.array(
            [
                w.edges_in_window(lo - margin_ps, hi + margin_ps) > 0
                for w in self.waveforms
            ],
            dtype=bool,
        )


def calibrate_endpoints(
    annotation: DelayAnnotation,
    reset_inputs: Mapping[str, int],
    measure_inputs: Mapping[str, int],
    endpoint_nets: Sequence[str],
    sample_period_ps: float,
) -> SensorCalibration:
    """Run the gate-level simulator once and build the fast model.

    Args:
        annotation: placed-and-annotated netlist.
        reset_inputs / measure_inputs: the alternating stimulus pair.
        endpoint_nets: observed endpoints, in sensor-bit order.
        sample_period_ps: overclocked measure-cycle length.
    """
    if sample_period_ps <= 0:
        raise ValueError("sample period must be positive")
    simulator = TimedSimulator(annotation)
    history = endpoint_waveforms(
        simulator, reset_inputs, measure_inputs, endpoint_nets, voltage=1.0
    )
    waveforms: List[EndpointWaveform] = []
    for net in endpoint_nets:
        events = history[net]
        times = np.array([t for t, _ in events], dtype=float)
        values = np.array([v for _, v in events], dtype=np.uint8)
        waveforms.append(EndpointWaveform(net, times, values))
    return SensorCalibration(
        waveforms=waveforms,
        sample_period_ps=sample_period_ps,
        delay_model=annotation.model,
    )

"""The paper's core contribution: benign logic misused as a sensor.

Pipeline components:

* :class:`BenignSensor` — implement/calibrate a benign circuit and
  sample its overclocked endpoints as a voltage sensor;
* :mod:`repro.core.calibration` — gate-level waveform extraction and
  the fast vectorized sampling model;
* :mod:`repro.core.postprocess` — sensitive-bit census, variance
  ranking, Hamming-weight reduction;
* :mod:`repro.core.atpg` — automated stimuli search (Sec. VI);
* :class:`AttackCampaign` — end-to-end key recovery orchestration.
"""

from repro.core.atpg import (
    ActivationObjective,
    MaxEndpointDelay,
    StimulusCandidate,
    WindowCoverage,
    find_activation_stimulus,
    stimulus_quality,
)
from repro.core.attack import (
    REDUCTION_HW,
    REDUCTION_SINGLE_BIT,
    AttackCampaign,
    CharacterizationResult,
)
from repro.core.covert import (
    CovertChannelResult,
    CovertReceiver,
    CovertTransmitter,
    OOKModulation,
    run_covert_channel,
)
from repro.core.calibration import (
    EndpointWaveform,
    SensorCalibration,
    calibrate_endpoints,
)
from repro.core.calibration_cache import (
    cached_calibrate_endpoints,
    calibration_stats,
    clear_calibration_cache,
)
from repro.core.endpoint_sensor import (
    DEFAULT_JITTER_PS,
    DEFAULT_SHARED_JITTER_PS,
    DEFAULT_OVERCLOCK_MHZ,
    BenignSensor,
    BenignSensorInstance,
)
from repro.core.tracegen import PhysicalTraceGenerator, random_plaintexts
from repro.core.waveform_bank import WaveformBank, build_bank
from repro.core.postprocess import (
    SensitivityCensus,
    best_bit,
    bit_variances,
    bits_of_interest,
    hamming_weight_series,
    rank_bits_by_variance,
    sensitivity_census,
    toggling_bits,
)

__all__ = [
    "ActivationObjective",
    "AttackCampaign",
    "BenignSensor",
    "BenignSensorInstance",
    "CharacterizationResult",
    "CovertChannelResult",
    "CovertReceiver",
    "CovertTransmitter",
    "OOKModulation",
    "PhysicalTraceGenerator",
    "random_plaintexts",
    "run_covert_channel",
    "DEFAULT_JITTER_PS",
    "DEFAULT_SHARED_JITTER_PS",
    "DEFAULT_OVERCLOCK_MHZ",
    "EndpointWaveform",
    "MaxEndpointDelay",
    "REDUCTION_HW",
    "REDUCTION_SINGLE_BIT",
    "SensitivityCensus",
    "SensorCalibration",
    "StimulusCandidate",
    "WaveformBank",
    "WindowCoverage",
    "best_bit",
    "build_bank",
    "bit_variances",
    "bits_of_interest",
    "cached_calibrate_endpoints",
    "calibrate_endpoints",
    "calibration_stats",
    "clear_calibration_cache",
    "find_activation_stimulus",
    "hamming_weight_series",
    "rank_bits_by_variance",
    "sensitivity_census",
    "stimulus_quality",
    "toggling_bits",
]

"""Time-to-Digital-Converter (TDC) voltage sensor.

The TDC is the established FPGA power-analysis sensor (Schellenberg et
al., DATE 2018; paper Fig. 1 right): a launch signal races down a
buffer delay line for one clock period; registers tap the line and
latch a thermometer code whose length is the number of stages the
signal traversed.  Because buffer delay grows as supply voltage drops,
the code length tracks voltage.

Real deployments prefix the tapped fine line with a *coarse* delay
(carry chains / routing) so the thermometer code sits mid-range at the
idle voltage and small voltage changes move it by many stages — that
amplification is why the paper's TDC recovers keys within a few
hundred traces while the benign sensors need ~10^5.

Two representations are provided:

* :func:`build_tdc_netlist` — the structural delay-line netlist (what a
  bitstream checker sees; flagged by :mod:`repro.defense`), and
* :class:`TDCSensor` — the fast behavioural model used in experiments,
  parameterized identically and driven by the shared delay model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.builder import NetlistBuilder
from repro.sensors.base import VoltageSensor
from repro.netlist.netlist import Netlist
from repro.timing.delay_model import DelayModel
from repro.util.rng import make_rng


def build_tdc_netlist(
    num_stages: int = 64, coarse_stages: int = 24, name: str = "tdc"
) -> Netlist:
    """Structural netlist of a TDC delay line.

    The launch input feeds ``coarse_stages`` untapped buffers followed
    by ``num_stages`` tapped buffers; each tap is a primary output
    (standing in for the capture registers).  This is the canonical
    delay-line pattern that bitstream checkers recognize.
    """
    if num_stages < 1 or coarse_stages < 0:
        raise ValueError("invalid stage counts")
    builder = NetlistBuilder(name)
    launch = builder.input("launch")
    node = launch
    for i in range(coarse_stages):
        node = builder.gate("BUF", [node], hint="coarse%d" % i)
    taps = []
    for i in range(num_stages):
        node = builder.gate("BUF", [node], output="tap%d" % i)
        taps.append(node)
    builder.mark_outputs(taps)
    return builder.build()


@dataclass
class TDCSensor(VoltageSensor):
    """Behavioural TDC model.

    The number of tapped stages the launch edge passes within the
    sampling window ``t_window`` at supply voltage ``v`` is::

        n(v) = (t_window - t_coarse * f(v)) / (d_fine * f(v))

    with ``f`` the delay factor of :class:`DelayModel`, clipped to
    ``[0, num_stages]``, plus sub-stage quantization and Gaussian
    jitter.  Defaults are calibrated so the idle readout sits at 32 of
    64 stages (mid-range, like the paper's sensor whose idle value is
    near bit 32) and a ~4 % droop moves it to ~10 — the Fig. 6 swing.

    Attributes:
        num_stages: tapped fine stages (output bits).
        fine_delay_ps: per-stage fine buffer delay at nominal voltage.
        window_ps: sampling window (one period of the 150 MHz sensor
            sampling clock by default).
        idle_stages: thermometer length at nominal voltage; fixes the
            coarse-line delay.
        jitter_stages: sigma of readout jitter in stage units.
        delay_model: shared supply-voltage delay scaling.
    """

    num_stages: int = 64
    fine_delay_ps: float = 50.0
    window_ps: float = 1e6 / 150.0   # 6666.7 ps = one 150 MHz period
    idle_stages: float = 35.7
    jitter_stages: float = 0.2
    delay_model: DelayModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.delay_model is None:
            self.delay_model = DelayModel()
        if not 0 < self.idle_stages <= self.num_stages:
            raise ValueError("idle_stages must lie within the fine line")
        self.coarse_delay_ps = (
            self.window_ps - self.idle_stages * self.fine_delay_ps
        )
        if self.coarse_delay_ps < 0:
            raise ValueError(
                "window too short for the requested idle point"
            )

    @property
    def num_bits(self) -> int:
        return self.num_stages

    def stages_passed(self, voltages: np.ndarray) -> np.ndarray:
        """Noise-free (real-valued) thermometer length per sample."""
        v = np.asarray(voltages, dtype=float)
        factor = np.asarray(self.delay_model.delay_factor(v), dtype=float)
        stages = (self.window_ps - self.coarse_delay_ps * factor) / (
            self.fine_delay_ps * factor
        )
        return np.clip(stages, 0.0, float(self.num_stages))

    def sample_scalar(self, voltages: np.ndarray, seed: int = 0) -> np.ndarray:
        """Integer thermometer length per sample, with jitter."""
        stages = self.stages_passed(voltages)
        if self.jitter_stages > 0:
            rng = make_rng(seed, "tdc-jitter")
            stages = stages + rng.normal(
                0.0, self.jitter_stages, size=stages.shape
            )
        return np.clip(np.round(stages), 0, self.num_stages).astype(np.int64)

    def sample_bits(self, voltages: np.ndarray, seed: int = 0) -> np.ndarray:
        """Thermometer-coded output registers (num_samples, num_stages).

        Bit ``i`` is 1 when the edge passed tap ``i`` — so low-index
        bits are almost always 1 and high-index bits almost always 0;
        the informative bits sit around the idle point (the paper picks
        bit 32, "the highest-variance bit close to the idle value").
        """
        lengths = self.sample_scalar(voltages, seed=seed)
        taps = np.arange(self.num_stages)
        return (taps[None, :] < lengths[:, None]).astype(np.uint8)

    def single_bit(
        self, voltages: np.ndarray, bit: int = 32, seed: int = 0
    ) -> np.ndarray:
        """Readout of one tap register across samples (paper Fig. 11)."""
        if not 0 <= bit < self.num_stages:
            raise ValueError("bit %d outside 0..%d" % (bit, self.num_stages - 1))
        return self.sample_bits(voltages, seed=seed)[:, bit]

"""Common interface for on-chip voltage sensors.

Three sensor families exist in this library:

* the reference TDC (:mod:`repro.sensors.tdc`) — the established
  attack sensor the paper compares against,
* the RO-counter sensor (:mod:`repro.sensors.ro`) — the slower
  loop-based sensor of prior work, and
* the benign-logic sensor (:mod:`repro.core.endpoint_sensor`) — the
  paper's contribution.

All of them implement :class:`VoltageSensor`: given a supply-voltage
waveform (one value per sample tick) they return their digital readout
per sample.  Keeping the interface waveform-in/samples-out lets every
experiment drive any sensor through the same pipeline.
"""

from __future__ import annotations

import abc

import numpy as np


class VoltageSensor(abc.ABC):
    """Abstract on-chip sensor sampling a voltage waveform."""

    @property
    @abc.abstractmethod
    def num_bits(self) -> int:
        """Number of output bits per sample."""

    @abc.abstractmethod
    def sample_bits(
        self, voltages: np.ndarray, seed: int = 0
    ) -> np.ndarray:
        """Digital readout for each supply-voltage sample.

        Args:
            voltages: shape (num_samples,) supply voltage per tick.
            seed: seed for sensor-local noise (jitter, metastability).

        Returns:
            uint8 array of shape (num_samples, num_bits).
        """

    def sample_scalar(
        self, voltages: np.ndarray, seed: int = 0
    ) -> np.ndarray:
        """Scalar per-sample readout (default: sum of output bits).

        For a thermometer-coded TDC this is the decoded stage count;
        for the benign sensor the Hamming weight of the endpoint bits.
        """
        return self.sample_bits(voltages, seed=seed).sum(axis=1)

"""Reference sensors and aggressors.

The established attack circuits the paper compares against (and that
bitstream checkers detect): the TDC delay-line sensor, the RO-counter
sensor, and the 8000-RO aggressor array used as a controlled source of
voltage fluctuations.
"""

from repro.sensors.base import VoltageSensor
from repro.sensors.ro import (
    RingOscillatorArray,
    ROSensor,
    build_ro_netlist,
)
from repro.sensors.tdc import TDCSensor, build_tdc_netlist

__all__ = [
    "RingOscillatorArray",
    "ROSensor",
    "TDCSensor",
    "VoltageSensor",
    "build_ro_netlist",
    "build_tdc_netlist",
]

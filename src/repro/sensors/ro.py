"""Ring oscillators: the RO-counter sensor and the 8000-RO aggressor.

Ring oscillators serve two roles in the paper:

* **Aggressor** (Sec. IV): an array of 8000 ROs is switched on and off
  to generate strong, controlled voltage fluctuations — the stimulus
  for the sensitivity censuses of Figs. 5–8 and 14–16.
* **Sensor** (related work, Fig. 1 left): counting RO oscillations in a
  fixed window estimates supply voltage, since oscillation frequency is
  inversely proportional to loop delay.  Included as the slow baseline
  sensor; bitstream checkers flag its combinational loop immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.pdn.aggressors import ROAggressorSchedule
from repro.sensors.base import VoltageSensor
from repro.timing.delay_model import DelayModel
from repro.util.rng import make_rng


def build_ro_netlist(
    num_inverters: int = 3, name: str = "ro", with_enable: bool = True
) -> Netlist:
    """Structural netlist of one ring oscillator.

    An odd chain of inverters closed into a combinational loop, with an
    optional enable NAND breaking into the loop.  The netlist is frozen
    with ``allow_cycles=True`` — it cannot be functionally evaluated,
    but the defense scanner inspects it structurally.
    """
    if num_inverters < 1 or num_inverters % 2 == 0:
        raise ValueError("inverter count must be odd and >= 1")
    # Built on Netlist directly (not NetlistBuilder): the loop closure
    # needs a forward reference to the last inverter's output.
    netlist = Netlist(name)
    loop_back = "inv%d" % (num_inverters - 1)
    if with_enable:
        netlist.add_input("enable")
        netlist.add_gate("loop_in", "NAND", ["enable", loop_back])
        previous = "loop_in"
    else:
        previous = loop_back
    for i in range(num_inverters):
        netlist.add_gate("inv%d" % i, "NOT", [previous])
        previous = "inv%d" % i
    netlist.add_output(loop_back)
    return netlist.freeze(allow_cycles=True)


@dataclass
class ROSensor(VoltageSensor):
    """Counter-based RO voltage sensor (asynchronous, low bandwidth).

    Oscillation frequency scales as ``f_nominal / delay_factor(v)``;
    the sensor counts rising edges in a measurement window.  Counting
    quantization makes this sensor far slower than a TDC for power
    analysis (Zhao & Suh, S&P 2018), which is why the paper uses the
    TDC as its measurement baseline.

    Attributes:
        nominal_freq_hz: oscillation frequency at nominal voltage.
        window_s: counting window duration.
        delay_model: supply-voltage delay scaling.
        jitter_counts: sigma of count jitter.
    """

    nominal_freq_hz: float = 400e6
    window_s: float = 1e-6
    delay_model: DelayModel = None  # type: ignore[assignment]
    jitter_counts: float = 0.5

    def __post_init__(self) -> None:
        if self.delay_model is None:
            self.delay_model = DelayModel()
        if self.nominal_freq_hz <= 0 or self.window_s <= 0:
            raise ValueError("frequency and window must be positive")

    @property
    def num_bits(self) -> int:
        """Width of the count register."""
        max_count = self.nominal_freq_hz * self.window_s * 2
        return max(1, int(np.ceil(np.log2(max_count + 1))))

    def sample_scalar(self, voltages: np.ndarray, seed: int = 0) -> np.ndarray:
        """Oscillation count per measurement window.

        Each entry of ``voltages`` is treated as the average supply
        during one counting window.
        """
        v = np.asarray(voltages, dtype=float)
        factor = np.asarray(self.delay_model.delay_factor(v), dtype=float)
        counts = self.nominal_freq_hz * self.window_s / factor
        if self.jitter_counts > 0:
            rng = make_rng(seed, "ro-jitter")
            counts = counts + rng.normal(0.0, self.jitter_counts, v.shape)
        return np.maximum(np.round(counts), 0).astype(np.int64)

    def sample_bits(self, voltages: np.ndarray, seed: int = 0) -> np.ndarray:
        """Binary count-register contents per window."""
        counts = self.sample_scalar(voltages, seed=seed)
        bits = np.zeros((counts.shape[0], self.num_bits), dtype=np.uint8)
        for i in range(self.num_bits):
            bits[:, i] = (counts >> i) & 1
        return bits


@dataclass
class RingOscillatorArray:
    """The 8000-RO aggressor block (paper Sec. IV).

    Couples the on/off :class:`~repro.pdn.ROAggressorSchedule` with the
    structural netlist view a bitstream checker would analyze.

    Attributes:
        schedule: enable/disable pattern and electrical magnitude.
        inverters_per_ro: loop length of each RO instance.
    """

    schedule: ROAggressorSchedule = ROAggressorSchedule()
    inverters_per_ro: int = 3

    @property
    def num_ros(self) -> int:
        return self.schedule.num_ros

    def current_waveform(self, num_samples: int) -> np.ndarray:
        """Aggressor current at the PDN sample rate."""
        return self.schedule.current_waveform(num_samples)

    def representative_netlist(self) -> Netlist:
        """One RO instance, as submitted in a (malicious) bitstream.

        The full array is 8000 copies; scanning one instance suffices
        for the defense checker, which reports per-pattern matches.
        """
        return build_ro_netlist(self.inverters_per_ro, name="ro_array_cell")

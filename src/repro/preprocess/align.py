"""Trace alignment: shift estimation against a reference trace.

Remote-power campaigns rarely get a clean trigger; the classic fix is
to estimate each trace's time offset against a reference trace and
gather it back onto the reference grid.  Two standard metrics are
implemented, both vectorized over the batch with a small loop over
candidate shifts:

* **correlation** — normalized cross-correlation of the overlapping
  span (robust to gain/offset differences);
* **SAD** — negative mean absolute difference (cheap, robust to a few
  outlier samples).

Shift convention: a trace with shift ``s`` carries the reference
content ``s`` samples *late* (``trace[j] ~ reference[j - s]``);
:func:`apply_shifts` therefore gathers ``trace[j + s]``.  Candidates
are searched in the order ``0, -1, 1, -2, 2, ...`` and ties keep the
earlier candidate, so degenerate traces (e.g. all-constant, where
every correlation denominator is zero) deterministically resolve to
shift 0 instead of an arbitrary extreme.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.preprocess.spec import PreprocessError

__all__ = [
    "align_traces",
    "apply_shifts",
    "crop",
    "estimate_shifts",
    "shift_candidates",
]


def crop(traces: np.ndarray, start: int, end: int) -> np.ndarray:
    """Static-window crop ``traces[:, start:end]`` with bounds checks."""
    traces = np.asarray(traces)
    length = traces.shape[-1]
    if not 0 <= start < end <= length:
        raise PreprocessError(
            "window %d:%d does not fit traces of %d samples"
            % (start, end, length)
        )
    return traces[..., start:end]


def shift_candidates(max_shift: int) -> List[int]:
    """Candidate shifts ordered by magnitude: ``0, -1, 1, -2, 2, ...``"""
    if max_shift < 1:
        raise PreprocessError("max_shift must be >= 1")
    order = [0]
    for s in range(1, int(max_shift) + 1):
        order.extend((-s, s))
    return order


def _as_batch(
    traces: np.ndarray, reference: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    traces = np.atleast_2d(np.asarray(traces, dtype=np.float64))
    reference = np.asarray(reference, dtype=np.float64)
    if traces.ndim != 2:
        raise PreprocessError("traces must be a (num, samples) batch")
    if reference.shape != (traces.shape[1],):
        raise PreprocessError(
            "reference length %s does not match trace length %d"
            % (reference.shape, traces.shape[1])
        )
    return traces, reference


def estimate_shifts(
    traces: np.ndarray,
    reference: np.ndarray,
    max_shift: int,
    metric: str = "correlation",
) -> np.ndarray:
    """Per-trace integer shift estimate against ``reference``.

    Args:
        traces: ``(num, samples)`` batch (a single 1-D trace is
            promoted to a one-row batch).
        reference: ``(samples,)`` reference trace.
        max_shift: search half-range; must be smaller than the trace
            length so every candidate keeps a non-empty overlap.
        metric: ``"correlation"`` or ``"sad"``.

    Returns:
        ``(num,)`` int64 shifts in ``[-max_shift, max_shift]``.
    """
    traces, reference = _as_batch(traces, reference)
    num, length = traces.shape
    if int(max_shift) >= length:
        raise PreprocessError(
            "max_shift=%d must be smaller than the %d-sample window"
            % (max_shift, length)
        )
    if metric not in ("correlation", "sad"):
        raise PreprocessError(
            "alignment metric %r not one of correlation, sad" % metric
        )
    best_score = np.full(num, -np.inf)
    best_shift = np.zeros(num, dtype=np.int64)
    # Exactly-constant traces must score 0 at every shift (and so keep
    # shift 0).  ``t - t.mean()`` is NOT exactly zero for them — the
    # mean of n equal floats rounds — so the variance guard below would
    # otherwise correlate that roundoff residue with the reference.
    varying = traces.max(axis=1) > traces.min(axis=1)
    for s in shift_candidates(max_shift):
        if s >= 0:
            t = traces[:, s:]
            r = reference[: length - s]
        else:
            t = traces[:, : length + s]
            r = reference[-s:]
        if metric == "correlation":
            t_centered = t - t.mean(axis=1, keepdims=True)
            r_centered = r - r.mean()
            denom = np.sqrt(
                (t_centered * t_centered).sum(axis=1)
                * (r_centered * r_centered).sum()
            )
            numer = t_centered @ r_centered
            score = np.zeros(num)
            valid = varying & (denom > 0)
            score[valid] = numer[valid] / denom[valid]
        else:
            score = -np.abs(t - r).mean(axis=1)
            # A constant trace is equally (un)informative at every
            # shift; pin its score so roundoff between overlap lengths
            # cannot break the tie away from shift 0.
            score[~varying] = 0.0
        # Strict improvement only: ties keep the earlier (smaller-|s|)
        # candidate, so zero-variance traces resolve to shift 0.
        better = score > best_score
        best_shift[better] = s
        best_score[better] = score[better]
    return best_shift


def apply_shifts(traces: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Gather each trace back onto the reference grid (edge-clamped).

    ``aligned[i, j] = traces[i, j + shifts[i]]`` with out-of-range
    source indices clamped to the trace ends; integer gathers move
    float64 values bitwise, so undoing an integer misalignment restores
    the interior samples exactly.
    """
    traces = np.atleast_2d(np.asarray(traces))
    shifts = np.asarray(shifts, dtype=np.int64).reshape(-1)
    if shifts.shape[0] != traces.shape[0]:
        raise PreprocessError(
            "got %d shifts for %d traces"
            % (shifts.shape[0], traces.shape[0])
        )
    length = traces.shape[1]
    indices = np.arange(length, dtype=np.int64)[None, :] + shifts[:, None]
    np.clip(indices, 0, length - 1, out=indices)
    return np.take_along_axis(traces, indices, axis=1)


def align_traces(
    traces: np.ndarray,
    reference: np.ndarray,
    max_shift: int,
    metric: str = "correlation",
) -> Tuple[np.ndarray, np.ndarray]:
    """Estimate and undo per-trace shifts; returns (aligned, shifts)."""
    shifts = estimate_shifts(traces, reference, max_shift, metric)
    return apply_shifts(np.atleast_2d(traces), shifts), shifts

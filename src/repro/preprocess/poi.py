"""Point-of-interest ranking over preprocessed trace samples.

After alignment/cropping/resampling, only a handful of samples carry
the last-round leakage; POI selection ranks candidate samples so the
campaign feeds a reduced-sample view (sum of the top-k samples'
Hamming-weight readings) into :class:`repro.attacks.cpa.StreamingCPA`
instead of one hard-coded index.  Two standard rankings:

* **variance** — unsupervised: samples where traces vary most;
* **SOST** — sum of squared pairwise t-statistics between value
  classes (here: the Hamming weight of a target ciphertext byte),
  which weights *key-dependent* variation and ignores common-mode
  activity.

Both rankings are deterministic: scores break ties by sample index
(stable argsort), so identical pilot data always selects identical
points on every host and backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.preprocess.spec import PreprocessError

__all__ = [
    "rank_samples",
    "select_poi",
    "sost_scores",
    "variance_scores",
]


def _as_trace_matrix(traces: np.ndarray) -> np.ndarray:
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise PreprocessError("traces must be a (num, samples) batch")
    return traces


def variance_scores(traces: np.ndarray) -> np.ndarray:
    """Per-sample variance across the pilot batch."""
    return _as_trace_matrix(traces).var(axis=0)


def sost_scores(traces: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Per-sample SOST score for the given per-trace class labels.

    ``sum_{i<j} (m_i - m_j)^2 / (v_i/n_i + v_j/n_j)`` over all class
    pairs, with zero-denominator pairs (constant samples) contributing
    zero rather than NaN.
    """
    traces = _as_trace_matrix(traces)
    classes = np.asarray(classes).reshape(-1)
    if classes.shape[0] != traces.shape[0]:
        raise PreprocessError(
            "got %d class labels for %d traces"
            % (classes.shape[0], traces.shape[0])
        )
    labels = np.unique(classes)
    if labels.size < 2:
        return np.zeros(traces.shape[1])
    means = np.empty((labels.size, traces.shape[1]))
    spreads = np.empty((labels.size, traces.shape[1]))
    for row, label in enumerate(labels):
        members = traces[classes == label]
        means[row] = members.mean(axis=0)
        spreads[row] = members.var(axis=0) / members.shape[0]
    scores = np.zeros(traces.shape[1])
    for i in range(labels.size):
        for j in range(i + 1, labels.size):
            gap = means[i] - means[j]
            denom = spreads[i] + spreads[j]
            valid = denom > 0
            scores[valid] += gap[valid] ** 2 / denom[valid]
    return scores


def rank_samples(scores: np.ndarray) -> np.ndarray:
    """Sample indices by decreasing score (ties: smaller index first)."""
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    return np.argsort(-scores, kind="stable")


def select_poi(
    traces: np.ndarray,
    method: str,
    num_poi: int,
    classes: Optional[np.ndarray] = None,
    candidates: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The top ``num_poi`` samples under the requested ranking.

    Args:
        traces: pilot batch ``(num, samples)``.
        method: ``"variance"`` or ``"sost"``.
        num_poi: points to keep (clipped to the candidate count).
        classes: per-trace labels; required for ``sost``.
        candidates: restrict the ranking to these sample indices (e.g.
            a target column's cycle neighbourhood); default all.

    Returns:
        Selected sample indices, sorted ascending.
    """
    traces = _as_trace_matrix(traces)
    if method == "variance":
        scores = variance_scores(traces)
    elif method == "sost":
        if classes is None:
            raise PreprocessError("SOST ranking needs class labels")
        scores = sost_scores(traces, classes)
    else:
        raise PreprocessError(
            "POI method %r not one of variance, sost" % method
        )
    if candidates is None:
        pool = np.arange(traces.shape[1], dtype=np.int64)
    else:
        pool = np.asarray(candidates, dtype=np.int64).reshape(-1)
        if pool.size == 0:
            raise PreprocessError("empty POI candidate set")
        if pool.min() < 0 or pool.max() >= traces.shape[1]:
            raise PreprocessError(
                "POI candidates outside the %d-sample trace"
                % traces.shape[1]
            )
    ranked = pool[np.argsort(-scores[pool], kind="stable")]
    keep = min(int(num_poi), ranked.size)
    return np.sort(ranked[:keep])

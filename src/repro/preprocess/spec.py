"""Declarative specs for acquisition realism and trace preprocessing.

Two small frozen dataclasses describe the whole ablation axis this
package opens up:

* :class:`MisalignmentSpec` — how *acquisition* distorts the time axis
  (trigger jitter, clock drift, sampling glitches).  It is consumed by
  :class:`repro.core.tracegen.PhysicalTraceGenerator`, which injects
  the distortion from its own seeded RNG streams, separate from the
  ambient-noise stream, so configurations without a spec stay
  bit-identical to every pre-existing output.
* :class:`PreprocessSpec` — how the *attacker* undoes it: static-window
  crop, alignment against a reference trace, polyphase resampling, and
  POI selection feeding a reduced-sample view into the streaming CPA.

Both have a compact one-line string grammar so they travel unchanged
through CLI flags (``--jitter``, ``--align``, ...), service job
``--param`` values, checkpoint manifests, and cache keys:

* misalignment — ``"uniform:3"``, ``"gaussian:1.5,drift=0.002"``,
  ``"none,glitch=0.01"``; the leading token is ``MODE:AMOUNT`` (or
  ``none``), the optional comma suffixes are ``drift=`` (relative
  clock-rate half-range) and ``glitch=`` (dropped/duplicated-sample
  probability).  ``uniform`` draws integer shifts (exactly undoable by
  alignment), ``gaussian`` draws fractional ones.
* preprocessing — semicolon-joined directives, e.g.
  ``"window=8:72;align=correlation:4;resample=3/2;poi=sost:3@512"``.
  ``align`` accepts ``correlation`` or ``sad`` with an optional
  ``:MAX_SHIFT``; ``poi`` accepts ``variance`` or ``sost`` with an
  optional ``:NUM_POI`` and ``@PILOT_TRACES``.

``to_string`` emits the canonical form (fixed field order, ``%g``
numbers), so two specs that mean the same job always hash to the same
service cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.util.errors import ReproError

__all__ = [
    "ALIGN_METHODS",
    "MisalignmentSpec",
    "POI_METHODS",
    "PreprocessError",
    "PreprocessSpec",
    "preprocess_spec_from_cli",
]


class PreprocessError(ReproError):
    """A misalignment/preprocess spec is malformed or inapplicable."""


#: Alignment methods (``none`` disables the stage).
ALIGN_METHODS = ("none", "correlation", "sad")

#: POI ranking methods (``none`` disables the stage).
POI_METHODS = ("none", "variance", "sost")

_SHIFT_MODES = ("none", "uniform", "gaussian")


def _format_number(value: float) -> str:
    return "%g" % float(value)


def _parse_float(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise PreprocessError(
            "%s must be a number, got %r" % (what, text)
        ) from None


def _parse_int(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise PreprocessError(
            "%s must be an integer, got %r" % (what, text)
        ) from None


@dataclass(frozen=True)
class MisalignmentSpec:
    """Per-trace acquisition-time distortion of the sample axis.

    Attributes:
        shift_mode: trigger-misalignment distribution — ``none``,
            ``uniform`` (integer shifts in ``[-n, n]``) or ``gaussian``
            (fractional shifts, sigma ``shift_samples``).
        shift_samples: shift half-range / sigma, in samples.
        drift: relative clock-rate half-range; every trace is resampled
            by a per-trace factor drawn uniformly from
            ``[1 - drift, 1 + drift]``.
        glitch_rate: per-sample probability of a dropped or duplicated
            sample (half each).
    """

    shift_mode: str = "none"
    shift_samples: float = 0.0
    drift: float = 0.0
    glitch_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.shift_mode not in _SHIFT_MODES:
            raise PreprocessError(
                "jitter mode %r not one of %s"
                % (self.shift_mode, ", ".join(_SHIFT_MODES))
            )
        if self.shift_samples < 0:
            raise PreprocessError("jitter shift must be >= 0")
        if self.shift_mode == "none" and self.shift_samples:
            raise PreprocessError(
                "jitter mode 'none' cannot carry a shift amount"
            )
        if self.shift_mode != "none" and self.shift_samples <= 0:
            raise PreprocessError(
                "jitter mode %r needs a positive shift amount"
                % self.shift_mode
            )
        if not 0.0 <= self.drift < 1.0:
            raise PreprocessError("drift must lie in [0, 1)")
        if not 0.0 <= self.glitch_rate < 1.0:
            raise PreprocessError("glitch rate must lie in [0, 1)")

    @property
    def enabled(self) -> bool:
        return (
            self.shift_mode != "none"
            or self.drift > 0
            or self.glitch_rate > 0
        )

    def to_string(self) -> str:
        """Canonical one-line form (parses back to an equal spec)."""
        if self.shift_mode == "none":
            head = "none"
        else:
            head = "%s:%s" % (
                self.shift_mode,
                _format_number(self.shift_samples),
            )
        parts = [head]
        if self.drift > 0:
            parts.append("drift=%s" % _format_number(self.drift))
        if self.glitch_rate > 0:
            parts.append("glitch=%s" % _format_number(self.glitch_rate))
        return ",".join(parts)

    @classmethod
    def from_string(cls, text: str) -> "MisalignmentSpec":
        """Parse the ``--jitter`` grammar (see module docstring)."""
        tokens = [t.strip() for t in str(text).strip().split(",")]
        if not tokens or not tokens[0]:
            raise PreprocessError("empty jitter spec")
        head = tokens[0]
        if head == "none":
            mode, amount = "none", 0.0
        else:
            name, sep, value = head.partition(":")
            if name not in _SHIFT_MODES:
                raise PreprocessError(
                    "jitter mode %r not one of %s"
                    % (name, ", ".join(_SHIFT_MODES))
                )
            if not sep:
                raise PreprocessError(
                    "jitter %r needs an amount, e.g. %r" % (name, name + ":2")
                )
            mode, amount = name, _parse_float(value, "jitter amount")
        drift = 0.0
        glitch = 0.0
        for token in tokens[1:]:
            key, sep, value = token.partition("=")
            if not sep or key not in ("drift", "glitch"):
                raise PreprocessError(
                    "unknown jitter option %r (valid: drift=, glitch=)"
                    % token
                )
            if key == "drift":
                drift = _parse_float(value, "drift")
            else:
                glitch = _parse_float(value, "glitch rate")
        return cls(
            shift_mode=mode,
            shift_samples=amount,
            drift=drift,
            glitch_rate=glitch,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "shift_mode": self.shift_mode,
            "shift_samples": float(self.shift_samples),
            "drift": float(self.drift),
            "glitch_rate": float(self.glitch_rate),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MisalignmentSpec":
        return cls(
            shift_mode=str(data.get("shift_mode", "none")),
            shift_samples=float(data.get("shift_samples", 0.0)),  # type: ignore[arg-type]
            drift=float(data.get("drift", 0.0)),  # type: ignore[arg-type]
            glitch_rate=float(data.get("glitch_rate", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class PreprocessSpec:
    """Composable attacker-side preprocessing of acquired traces.

    Stages run in a fixed order — align, crop, resample, POI-select —
    because alignment needs the full-length trace, cropping fixes the
    resampler's input span, and POI ranking happens in the final
    sample space.

    Attributes:
        window: ``(start, end)`` crop in original samples, or None.
        align: ``none`` / ``correlation`` / ``sad``.
        max_shift: alignment search half-range in samples.
        resample: ``(up, down)`` polyphase rate change, or None.
        poi: ``none`` / ``variance`` / ``sost`` ranking method.
        num_poi: points of interest kept per target column.
        poi_traces: pilot traces used to rank candidate points.
    """

    window: Optional[Tuple[int, int]] = None
    align: str = "none"
    max_shift: int = 8
    resample: Optional[Tuple[int, int]] = None
    poi: str = "none"
    num_poi: int = 3
    poi_traces: int = 512

    def __post_init__(self) -> None:
        if self.window is not None:
            start, end = self.window
            object.__setattr__(self, "window", (int(start), int(end)))
            if int(start) < 0 or int(end) <= int(start):
                raise PreprocessError(
                    "window must satisfy 0 <= start < end, got %d:%d"
                    % (start, end)
                )
        if self.align not in ALIGN_METHODS:
            raise PreprocessError(
                "alignment method %r not one of %s"
                % (self.align, ", ".join(ALIGN_METHODS))
            )
        if self.max_shift < 1:
            raise PreprocessError("max_shift must be >= 1")
        if self.resample is not None:
            up, down = self.resample
            object.__setattr__(self, "resample", (int(up), int(down)))
            if int(up) < 1 or int(down) < 1:
                raise PreprocessError(
                    "resample factors must be positive, got %d/%d"
                    % (up, down)
                )
        if self.poi not in POI_METHODS:
            raise PreprocessError(
                "POI method %r not one of %s"
                % (self.poi, ", ".join(POI_METHODS))
            )
        if self.num_poi < 1:
            raise PreprocessError("num_poi must be >= 1")
        if self.poi_traces < 2:
            raise PreprocessError("poi_traces must be >= 2")

    @property
    def enabled(self) -> bool:
        return (
            self.window is not None
            or self.align != "none"
            or self.resample is not None
            or self.poi != "none"
        )

    def to_string(self) -> str:
        """Canonical one-line form (parses back to an equal spec)."""
        parts = []
        if self.window is not None:
            parts.append("window=%d:%d" % self.window)
        if self.align != "none":
            parts.append("align=%s:%d" % (self.align, self.max_shift))
        if self.resample is not None:
            parts.append("resample=%d/%d" % self.resample)
        if self.poi != "none":
            parts.append(
                "poi=%s:%d@%d" % (self.poi, self.num_poi, self.poi_traces)
            )
        return ";".join(parts) if parts else "none"

    @classmethod
    def from_string(cls, text: str) -> "PreprocessSpec":
        """Parse the semicolon-joined directive grammar."""
        cleaned = str(text).strip()
        if cleaned == "none" or not cleaned:
            return cls()
        fields: Dict[str, object] = {}
        for token in cleaned.split(";"):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            if not sep:
                raise PreprocessError(
                    "preprocess directive %r is not KEY=VALUE "
                    "(valid keys: window, align, resample, poi)" % token
                )
            if key == "window":
                start, sep2, end = value.partition(":")
                if not sep2:
                    raise PreprocessError(
                        "window must be START:END, got %r" % value
                    )
                fields["window"] = (
                    _parse_int(start, "window start"),
                    _parse_int(end, "window end"),
                )
            elif key == "align":
                method, sep2, max_shift = value.partition(":")
                fields["align"] = method
                if sep2:
                    fields["max_shift"] = _parse_int(
                        max_shift, "alignment max shift"
                    )
            elif key == "resample":
                up, sep2, down = value.partition("/")
                if not sep2:
                    raise PreprocessError(
                        "resample must be UP/DOWN, got %r" % value
                    )
                fields["resample"] = (
                    _parse_int(up, "resample up factor"),
                    _parse_int(down, "resample down factor"),
                )
            elif key == "poi":
                method, sep2, rest = value.partition(":")
                fields["poi"] = method
                if sep2:
                    count, sep3, pilots = rest.partition("@")
                    fields["num_poi"] = _parse_int(count, "num_poi")
                    if sep3:
                        fields["poi_traces"] = _parse_int(
                            pilots, "poi_traces"
                        )
            else:
                raise PreprocessError(
                    "unknown preprocess key %r "
                    "(valid: window, align, resample, poi)" % key
                )
        return cls(**fields)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": None if self.window is None else list(self.window),
            "align": self.align,
            "max_shift": int(self.max_shift),
            "resample": (
                None if self.resample is None else list(self.resample)
            ),
            "poi": self.poi,
            "num_poi": int(self.num_poi),
            "poi_traces": int(self.poi_traces),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PreprocessSpec":
        window = data.get("window")
        resample = data.get("resample")
        return cls(
            window=None if window is None else tuple(window),  # type: ignore[arg-type]
            align=str(data.get("align", "none")),
            max_shift=int(data.get("max_shift", 8)),  # type: ignore[arg-type]
            resample=None if resample is None else tuple(resample),  # type: ignore[arg-type]
            poi=str(data.get("poi", "none")),
            num_poi=int(data.get("num_poi", 3)),  # type: ignore[arg-type]
            poi_traces=int(data.get("poi_traces", 512)),  # type: ignore[arg-type]
        )


def preprocess_spec_from_cli(
    align: Optional[str] = None,
    poi: Optional[str] = None,
    window: Optional[str] = None,
    resample: Optional[str] = None,
) -> Optional[PreprocessSpec]:
    """Compose the ``--align``/``--poi``/``--window``/``--resample``
    flag values into one spec (None when no flag was given)."""
    parts = []
    if window is not None:
        parts.append("window=%s" % window)
    if align is not None:
        parts.append("align=%s" % align)
    if resample is not None:
        parts.append("resample=%s" % resample)
    if poi is not None:
        parts.append("poi=%s" % poi)
    if not parts:
        return None
    return PreprocessSpec.from_string(";".join(parts))

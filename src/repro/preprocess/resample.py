"""Polyphase resampling/decimation for trace preprocessing.

Rate conversion by a rational factor ``up/down``: zero-stuff by
``up``, filter with a Kaiser-windowed sinc, keep every ``down``-th
sample.  The filter is padded so its group delay lands on the output
grid, which keeps the resampled trace time-aligned with the input —
``map_resampled_index`` then converts an original sample index into
the resampled space.

Backends follow the :mod:`repro.util.kernels` dispatch conventions as
the fourth registered kernel (``resample``):

* ``scipy`` — :func:`scipy.signal.upfirdn`'s compiled polyphase loop;
* ``numpy`` — a pure-numpy polyphase evaluation registered as the
  reference.  Each output phase accumulates its taps in *descending*
  tap order, which is exactly the accumulation order of scipy's
  implementation — so the two backends are **bit-identical**, not just
  close, and the registry's equality contract holds for this kernel
  like for aes/pdn/cpa (asserted in the test suite over a sweep of
  rate pairs).

There is no native implementation; under a ``native`` selection the
dispatcher falls back to ``scipy`` where available, else ``numpy``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.preprocess.spec import PreprocessError
from repro.util import kernels

__all__ = [
    "design_polyphase_filter",
    "map_resampled_index",
    "polyphase_resample",
    "resampled_length",
]

#: Half-length of the anti-aliasing filter, in zero-crossing periods of
#: the target Nyquist sinc (the ``resample_poly`` convention).
_HALF_PHASES = 10
_KAISER_BETA = 5.0


def _reduced(up: int, down: int) -> Tuple[int, int]:
    up, down = int(up), int(down)
    if up < 1 or down < 1:
        raise PreprocessError(
            "resample factors must be positive, got %d/%d" % (up, down)
        )
    g = int(np.gcd(up, down))
    return up // g, down // g


@lru_cache(maxsize=32)
def design_polyphase_filter(up: int, down: int) -> Tuple[np.ndarray, int]:
    """Shared anti-aliasing filter for one reduced ``(up, down)`` pair.

    Returns ``(taps, delay)`` where ``taps`` is the Kaiser-windowed
    sinc (gain ``up``, cutoff at the tighter of the two Nyquist rates)
    zero-padded so that ``delay`` — the group delay in up-rate samples
    — is divisible by ``down``; both backends consume the identical
    array, so their arithmetic inputs match exactly.
    """
    max_rate = max(up, down)
    cutoff = 1.0 / (2.0 * max_rate)
    half_len = _HALF_PHASES * max_rate
    n = np.arange(-half_len, half_len + 1, dtype=np.float64)
    taps = 2.0 * cutoff * np.sinc(2.0 * cutoff * n)
    taps *= np.kaiser(2 * half_len + 1, _KAISER_BETA)
    taps *= up
    delay = half_len
    pad = (-delay) % down
    if pad:
        taps = np.concatenate([np.zeros(pad), taps, np.zeros(pad)])
        delay += pad
    return taps, int(delay)


def _upfirdn_out_len(n_taps: int, n_in: int, up: int, down: int) -> int:
    return -(-((n_in - 1) * up + n_taps) // down)


def _upfirdn_numpy(
    taps: np.ndarray, x: np.ndarray, up: int, down: int
) -> np.ndarray:
    """Reference polyphase upfirdn, bit-identical to scipy's.

    Output sample ``j`` taps the input at ``start - t`` for tap indices
    ``t`` of phase ``j*down % up``; accumulating ``t`` from the
    highest tap down replays scipy's in-loop accumulation order, so
    every float64 partial sum matches the compiled path exactly.
    """
    x = np.asarray(x, dtype=np.float64)
    taps = np.asarray(taps, dtype=np.float64)
    n_in = x.shape[-1]
    n_out = _upfirdn_out_len(len(taps), n_in, up, down)
    out = np.zeros(x.shape[:-1] + (n_out,), dtype=np.float64)
    j = np.arange(n_out)
    m = j * down
    phase = m % up
    start = m // up
    for p in range(up):
        in_phase = phase == p
        j_p = j[in_phase]
        start_p = start[in_phase]
        num_taps = (len(taps) - p + up - 1) // up
        for t in range(num_taps - 1, -1, -1):
            i = start_p - t
            valid = (i >= 0) & (i < n_in)
            out[..., j_p[valid]] += taps[p + t * up] * x[..., i[valid]]
    return out


def _upfirdn_scipy(
    taps: np.ndarray, x: np.ndarray, up: int, down: int
) -> np.ndarray:
    from scipy.signal import upfirdn  # noqa: PLC0415 — scipy-gated

    return upfirdn(taps, np.asarray(x, dtype=np.float64), up=up, down=down)


kernels.register_backend("resample", "numpy", upfirdn=_upfirdn_numpy)
kernels.register_backend("resample", "scipy", upfirdn=_upfirdn_scipy)


def resampled_length(num_samples: int, up: int, down: int) -> int:
    """Output length of :func:`polyphase_resample`."""
    up, down = _reduced(up, down)
    return -(-int(num_samples) * up // down)


def map_resampled_index(index: int, up: int, down: int) -> int:
    """An original sample index in the resampled time base (clipped to
    the valid range by the caller where needed)."""
    up, down = _reduced(up, down)
    return int(round(int(index) * up / down))


def polyphase_resample(
    traces: np.ndarray, up: int, down: int
) -> np.ndarray:
    """Resample a trace batch by the rational factor ``up/down``.

    Delay-compensated: output sample ``j`` sits at input time
    ``j * down / up``, so resampling by ``1/1`` is the identity and
    attack samples move by :func:`map_resampled_index`.  Dispatched
    through the ``resample`` kernel; every backend is bit-identical.
    """
    traces = np.asarray(traces, dtype=np.float64)
    up, down = _reduced(up, down)
    if up == 1 and down == 1:
        return traces
    n_in = traces.shape[-1]
    if n_in < 2:
        raise PreprocessError("resampling needs at least 2 samples")
    taps, delay = design_polyphase_filter(up, down)
    full = kernels.dispatch("resample", "upfirdn")(taps, traces, up, down)
    skip = delay // down
    n_out = resampled_length(n_in, up, down)
    out = full[..., skip : skip + n_out]
    if out.shape[-1] < n_out:
        out = np.concatenate(
            [
                out,
                np.zeros(
                    out.shape[:-1] + (n_out - out.shape[-1],),
                    dtype=np.float64,
                ),
            ],
            axis=-1,
        )
    return out

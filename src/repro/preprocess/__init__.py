"""Acquisition-realism preprocessing: alignment, resampling, POIs.

This package is the attacker's *time-axis* toolbox for realistically
acquired traces — the stage real remote-power campaigns spend most of
their effort on and which perfectly-triggered simulation skips:

1. :mod:`repro.preprocess.spec` — declarative
   :class:`~repro.preprocess.spec.MisalignmentSpec` (how acquisition
   distorts traces) and :class:`~repro.preprocess.spec.PreprocessSpec`
   (how the attacker undoes it), with a one-line string grammar shared
   by CLI flags, service job params, manifests and cache keys;
2. :mod:`repro.preprocess.align` — static-window crop plus
   correlation/SAD shift estimation against a reference trace;
3. :mod:`repro.preprocess.resample` — polyphase rational resampling,
   registered as the fourth :mod:`repro.util.kernels` kernel
   (scipy-gated, with a bit-identical numpy fallback);
4. :mod:`repro.preprocess.poi` — variance and SOST point-of-interest
   ranking feeding a reduced-sample view into the streaming CPA;
5. :mod:`repro.preprocess.pipeline` — binding a spec to a concrete
   generator (:func:`~repro.preprocess.pipeline.resolve_preprocess`)
   into the picklable per-shard plan the campaign drivers execute.

**This is not** :mod:`repro.core.postprocess`.  The two names are
deliberate and disjoint, and the test suite pins the split:

* ``repro.core.postprocess`` operates on the *bit axis* of a single
  latched endpoint word **after** sensing: sensitive-bit censuses,
  per-bit variance ranking, and the Hamming-weight reduction of an
  endpoint capture to a scalar sensor value (paper Figs. 5-8/14-16).
* ``repro.preprocess`` operates on the *sample/time axis* of whole
  traces **before** the CPA consumes them: realignment, cropping,
  resampling and POI selection across samples.

Bit-level helpers stay importable only from ``repro.core.postprocess``
(:func:`~repro.core.postprocess.hamming_weight_series`,
:func:`~repro.core.postprocess.rank_bits_by_variance`, ...); the
sample-level helpers here rank *samples*, not bits
(:func:`~repro.preprocess.poi.rank_samples`).
"""

from repro.preprocess.align import (
    align_traces,
    apply_shifts,
    crop,
    estimate_shifts,
)
from repro.preprocess.pipeline import (
    ResolvedPreprocess,
    resolve_preprocess,
)
from repro.preprocess.poi import (
    rank_samples,
    select_poi,
    sost_scores,
    variance_scores,
)
from repro.preprocess.resample import (
    map_resampled_index,
    polyphase_resample,
    resampled_length,
)
from repro.preprocess.spec import (
    ALIGN_METHODS,
    POI_METHODS,
    MisalignmentSpec,
    PreprocessError,
    PreprocessSpec,
    preprocess_spec_from_cli,
)

__all__ = [
    "ALIGN_METHODS",
    "MisalignmentSpec",
    "POI_METHODS",
    "PreprocessError",
    "PreprocessSpec",
    "ResolvedPreprocess",
    "align_traces",
    "apply_shifts",
    "crop",
    "estimate_shifts",
    "map_resampled_index",
    "polyphase_resample",
    "preprocess_spec_from_cli",
    "rank_samples",
    "resampled_length",
    "resolve_preprocess",
    "select_poi",
    "sost_scores",
    "variance_scores",
]

"""Resolving a :class:`PreprocessSpec` against a concrete campaign.

A spec is declarative; before a campaign can run it must be *resolved*
against the generator's geometry into a :class:`ResolvedPreprocess`:
the alignment reference trace, the processed-space length, and — per
last-round column — the sample indices the sensor will read.  The
resolution is a pure function of ``(spec, generator config, seed)``:

* the reference trace is the mean of a small seeded batch of
  *noise-free, misalignment-free* deterministic traces
  (``derive_seed(seed, "preprocess-reference")``);
* POI ranking draws a seeded pilot batch through the full acquisition
  path — including the generator's misalignment, so the ranking sees
  exactly the distortion the campaign will see — and ranks candidates
  inside each target column's cycle neighbourhood
  (``derive_seed(seed, "preprocess-pilot")`` /
  ``"preprocess-pilot-noise"``).

Every worker therefore derives the identical plan, and the resolved
object is small and picklable, so it rides the fork-once heavy state
of the zero-copy shard fan-out unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.preprocess.align import apply_shifts, crop, estimate_shifts
from repro.preprocess.poi import select_poi
from repro.preprocess.resample import (
    map_resampled_index,
    polyphase_resample,
    resampled_length,
)
from repro.preprocess.spec import PreprocessError, PreprocessSpec
from repro.util.rng import derive_seed

__all__ = [
    "REFERENCE_TRACES",
    "ResolvedPreprocess",
    "resolve_preprocess",
]

#: Pilot batch size for the alignment reference trace (mean of a seeded
#: noise-free batch; small, since the deterministic path has no noise
#: to average out — the mean only smooths over plaintext-dependent
#: activity).
REFERENCE_TRACES = 64


@dataclass(frozen=True)
class ResolvedPreprocess:
    """A spec bound to one campaign's trace geometry.

    Attributes:
        spec: the originating declarative spec.
        reference: full-length alignment reference trace (None when
            the spec has no alignment stage).
        num_samples: expected raw trace length.
        processed_samples: trace length after crop + resample.
        column_samples: per last-round column, the processed-space
            sample indices whose sensor readings are summed into the
            campaign's leakage series.
    """

    spec: PreprocessSpec
    reference: Optional[np.ndarray]
    num_samples: int
    processed_samples: int
    column_samples: Dict[int, np.ndarray] = field(default_factory=dict)

    def apply(self, voltages: np.ndarray) -> np.ndarray:
        """Run the align → crop → resample chain on a trace batch."""
        v = np.asarray(voltages, dtype=np.float64)
        if v.ndim != 2 or v.shape[1] != self.num_samples:
            raise PreprocessError(
                "expected a (num, %d) trace batch, got %s"
                % (self.num_samples, (v.shape,))
            )
        if self.spec.align != "none":
            shifts = estimate_shifts(
                v, self.reference, self.spec.max_shift, self.spec.align
            )
            v = apply_shifts(v, shifts)
        if self.spec.window is not None:
            v = crop(v, *self.spec.window)
        if self.spec.resample is not None:
            v = polyphase_resample(v, *self.spec.resample)
        return v

    def samples_for_column(self, column: int) -> np.ndarray:
        """Processed-space sample indices for one last-round column."""
        samples = self.column_samples.get(int(column))
        if samples is None:
            raise PreprocessError(
                "preprocessing was resolved without column %d "
                "(resolved columns: %s)"
                % (column, sorted(self.column_samples))
            )
        return samples


def _map_index(spec: PreprocessSpec, index: int, length: int) -> int:
    """An original sample index in the processed time base."""
    p = int(index)
    if spec.window is not None:
        start, end = spec.window
        if not start <= p < end:
            raise PreprocessError(
                "window %d:%d excludes the last-round sample %d"
                % (start, end, p)
            )
        p -= start
    if spec.resample is not None:
        p = map_resampled_index(p, *spec.resample)
    return p


def _byte_for_column(column: int, target_byte: int) -> int:
    """A key byte whose last-round CPA reads the given column."""
    from repro.attacks.full_key import column_of_key_byte  # noqa: PLC0415

    if column_of_key_byte(target_byte) == column:
        return int(target_byte)
    for byte in range(16):
        if column_of_key_byte(byte) == column:
            return byte
    raise PreprocessError("no key byte maps to column %d" % column)


def _hamming_weights(values: np.ndarray) -> np.ndarray:
    bits = np.unpackbits(np.asarray(values, dtype=np.uint8)[:, None], axis=1)
    return bits.sum(axis=1)


def resolve_preprocess(
    spec: Optional[PreprocessSpec],
    generator,
    seed: int,
    columns: Sequence[int] = (),
    target_byte: int = 0,
) -> Optional[ResolvedPreprocess]:
    """Bind a spec to a generator's geometry (None stays None).

    Args:
        spec: declarative preprocessing spec, or None.
        generator: :class:`repro.core.tracegen.PhysicalTraceGenerator`
            whose geometry (and misalignment, for POI pilots) applies.
        seed: campaign seed; the reference and pilot draws derive
            private streams from it.
        columns: last-round columns the campaign will read (the attack
            path passes its target byte's column; full-key passes all
            four).
        target_byte: preferred ciphertext byte for SOST labelling.

    Returns:
        A :class:`ResolvedPreprocess`, or None when ``spec`` is None
        or entirely disabled.
    """
    if spec is None or not spec.enabled:
        return None
    from repro.core.tracegen import random_plaintexts  # noqa: PLC0415

    num_samples = int(generator.num_samples)
    if spec.window is not None and spec.window[1] > num_samples:
        raise PreprocessError(
            "window %d:%d does not fit the generator's %d samples"
            % (spec.window[0], spec.window[1], num_samples)
        )
    if spec.align != "none" and spec.max_shift >= num_samples:
        raise PreprocessError(
            "max_shift=%d must be smaller than the %d-sample window"
            % (spec.max_shift, num_samples)
        )
    length = (
        spec.window[1] - spec.window[0]
        if spec.window is not None
        else num_samples
    )
    processed = (
        resampled_length(length, *spec.resample)
        if spec.resample is not None
        else length
    )

    reference = None
    if spec.align != "none":
        pilots = random_plaintexts(
            REFERENCE_TRACES, seed=derive_seed(seed, "preprocess-reference")
        )
        reference = (
            generator.generate_deterministic(pilots)["voltages"]
            .mean(axis=0)
        )

    resolved = ResolvedPreprocess(
        spec=spec,
        reference=reference,
        num_samples=num_samples,
        processed_samples=int(processed),
    )

    aligned_indices = generator.last_round_sample_indices()
    nominal = {
        int(column): min(
            _map_index(spec, int(aligned_indices[int(column)]), num_samples),
            int(processed) - 1,
        )
        for column in columns
    }
    if spec.poi == "none":
        column_samples = {
            column: np.array([index], dtype=np.int64)
            for column, index in nominal.items()
        }
    else:
        pilot_pts = random_plaintexts(
            spec.poi_traces, seed=derive_seed(seed, "preprocess-pilot")
        )
        pilot = generator.generate(
            pilot_pts, seed=derive_seed(seed, "preprocess-pilot-noise")
        )
        pilot_processed = resolved.apply(pilot["voltages"])
        # Candidate pool: the column's cycle neighbourhood in processed
        # space — POI selection refines *where inside the cycle* the
        # sensor should latch, it must not wander to another column's
        # (stronger) cycle.
        scale = (
            spec.resample[0] / spec.resample[1]
            if spec.resample is not None
            else 1.0
        )
        radius = max(1, int(round(generator.samples_per_cycle * scale / 2)))
        column_samples = {}
        for column, index in nominal.items():
            pool = np.arange(
                max(0, index - radius),
                min(int(processed), index + radius + 1),
                dtype=np.int64,
            )
            classes = None
            if spec.poi == "sost":
                byte = _byte_for_column(column, target_byte)
                classes = _hamming_weights(pilot["ciphertexts"][:, byte])
            column_samples[column] = select_poi(
                pilot_processed,
                spec.poi,
                spec.num_poi,
                classes=classes,
                candidates=pool,
            )
    object.__setattr__(resolved, "column_samples", column_samples)
    return resolved

"""Preliminary characterization experiments (paper Sec. V-A / V-D).

Drivers for Figs. 3-8 and 14-16: floorplans, raw toggling captures,
the TDC-vs-benign-sensor comparison, sensitive-bit censuses and
per-bit variance profiles.  Every driver returns a plain dict of
arrays/scalars so benches can assert on it and examples can print it.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.postprocess import hamming_weight_series
from repro.experiments.setup import ExperimentSetup
from repro.pdn.aggressors import ROAggressorSchedule
from repro.util.rng import derive_seed


def fig03_04_floorplan(
    setup: ExperimentSetup, circuit: str
) -> Dict[str, object]:
    """Figs. 3/4: floorplan with sensitive endpoints marked.

    Args:
        setup: experiment setup.
        circuit: ``"alu"`` (Fig. 3) or ``"c6288x2"`` (Fig. 4).
    """
    device, floorplan = setup.floorplan(circuit)
    rendered = floorplan.render()
    return {
        "circuit": circuit,
        "rendered": rendered,
        "sensitive_sites": floorplan.sensitive_site_count(),
        "regions": sorted(device.regions),
        "wirelength": sum(p.wirelength() for p in floorplan.placements),
    }


def fig05_raw_toggle(
    setup: ExperimentSetup,
    circuit: str = "alu",
    num_samples: int = 160,
) -> Dict[str, object]:
    """Figs. 5/14: raw endpoint captures under the 8000-RO pattern.

    Returns the capture matrix (every second clock cycle, i.e. one row
    per measure cycle), the per-sample count of set bits, and the RO
    enable sample — enough to reproduce the "random-looking toggling
    after enable" observation.
    """
    schedule = ROAggressorSchedule()
    campaign = setup.campaign(circuit)
    current = schedule.current_waveform(num_samples)
    voltages = campaign.pdn.simulate({"attacker": current})[
        campaign.pdn.regions[0]
    ]
    bits = campaign.sensor.sample_bits(
        voltages, seed=derive_seed(setup.config.seed, "fig05", circuit)
    )
    before = bits[: schedule.start_sample]
    after = bits[schedule.start_sample :]
    return {
        "circuit": circuit,
        "bits": bits,
        "set_bits_per_sample": bits.sum(axis=1),
        "enable_sample": schedule.start_sample,
        "toggling_before_enable": int(
            (before != before[0]).any(axis=0).sum()
        ),
        "toggling_after_enable": int((after != after[0]).any(axis=0).sum()),
    }


def fig06_tdc_vs_benign(
    setup: ExperimentSetup,
    circuit: str = "alu",
    num_samples: int = 160,
) -> Dict[str, object]:
    """Fig. 6: TDC readout vs Hamming weight of sensitive benign bits.

    Both sensors observe the same two droop/overshoot events caused by
    gradually-enabled / suddenly-disabled ROs.
    """
    schedule = ROAggressorSchedule()
    campaign = setup.campaign(circuit)
    characterization = setup.characterization(circuit)
    current = schedule.current_waveform(num_samples)
    voltages = campaign.pdn.simulate({"attacker": current})[
        campaign.pdn.regions[0]
    ]
    tdc_series = setup.tdc.sample_scalar(
        voltages, seed=derive_seed(setup.config.seed, "fig06-tdc")
    )
    bits = campaign.sensor.sample_bits(
        voltages, seed=derive_seed(setup.config.seed, "fig06", circuit)
    )
    benign_series = hamming_weight_series(
        bits, characterization.census.ro_sensitive
    )
    idle = slice(0, schedule.start_sample)
    droop = slice(schedule.start_sample + 10, schedule.start_sample + 30)
    # The overshoot develops after a *sudden* disable; the one after the
    # final repetition is not cut short by the next enable ramp.
    final_disable = (
        schedule.start_sample
        + (schedule.repetitions - 1) * schedule.period_samples
        + schedule.ramp_samples
    )
    # Peak overshoot arrives about half a resonance period after the
    # release (~37 samples at 150 MHz for the 2 MHz PDN).
    overshoot = slice(final_disable, min(final_disable + 50, num_samples))
    return {
        "circuit": circuit,
        "voltages": voltages,
        "tdc": tdc_series,
        "benign_hw": benign_series,
        "enable_sample": schedule.start_sample,
        "tdc_idle": float(tdc_series[idle].mean()),
        "tdc_droop_min": float(tdc_series[droop].min()),
        "tdc_overshoot_max": float(tdc_series[overshoot].max()),
        "correlation": float(
            np.corrcoef(tdc_series.astype(float), benign_series)[0, 1]
        ),
    }


def fig07_15_census(
    setup: ExperimentSetup, circuit: str
) -> Dict[str, object]:
    """Figs. 7/15: the sensitive-bit census."""
    characterization = setup.characterization(circuit)
    summary = characterization.census.summary()
    summary["circuit"] = circuit
    summary["aes_is_subset"] = characterization.census.aes_is_subset
    return summary


def fig08_16_variance(
    setup: ExperimentSetup, circuit: str
) -> Dict[str, object]:
    """Figs. 8/16: per-bit variance under RO and AES activity."""
    characterization = setup.characterization(circuit)
    return {
        "circuit": circuit,
        "variance_ro": characterization.variances_ro,
        "variance_aes": characterization.variances_aes,
        "sensitive_mask": characterization.census.ro_sensitive,
        "best_bit": characterization.best_bit(0),
        "second_bit": characterization.best_bit(1),
        "response_correlations": (
            characterization.bit_response_correlations()
        ),
    }

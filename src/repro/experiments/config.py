"""Experiment configuration and the paper's expected results.

One :class:`ExperimentConfig` parameterizes every figure driver, so a
bench, an example, and a test all run the same experiment at different
scales.  ``PAPER_EXPECTED`` records the numbers the paper reports per
figure; EXPERIMENTS.md pairs them with our measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: AES key used across experiments (arbitrary but fixed).
DEFAULT_KEY = bytes(range(16))


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of all figure experiments.

    Attributes:
        seed: root seed; every stochastic component derives from it.
        key: the victim's AES-128 key.
        num_traces: CPA campaign length (paper: 500k).
        characterization_samples: capture length for Figs. 5-8/14-16.
        target_byte / target_bit: CPA target (paper: 1st bit of the 4th
            byte of the last round key).
        overclock_mhz: benign-circuit clock (paper: 300 MHz).
        max_workers: worker count for the sharded campaign driver
            (None: a machine-dependent default; 1: force serial).
            Results are identical either way — sharding only changes
            wall-clock.
        executor: sharded-driver backend, ``"thread"`` (default) or
            ``"process"`` (true multi-core; see
            :mod:`repro.util.executors`).  Results are identical on
            either backend.
    """

    seed: int = 1
    key: bytes = DEFAULT_KEY
    num_traces: int = 500_000
    characterization_samples: int = 1200
    target_byte: int = 3
    target_bit: int = 0
    overclock_mhz: float = 300.0
    max_workers: Optional[int] = None
    executor: Optional[str] = None

    def scaled(self, fraction: float) -> "ExperimentConfig":
        """A cheaper copy with ``num_traces`` scaled by ``fraction``.

        Used by tests and quick examples; the figure benches run the
        full budget.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        return ExperimentConfig(
            seed=self.seed,
            key=self.key,
            num_traces=max(1000, int(self.num_traces * fraction)),
            characterization_samples=self.characterization_samples,
            target_byte=self.target_byte,
            target_bit=self.target_bit,
            overclock_mhz=self.overclock_mhz,
            max_workers=self.max_workers,
            executor=self.executor,
        )


#: The paper's reported outcome per figure (see EXPERIMENTS.md).
PAPER_EXPECTED: Dict[str, str] = {
    "fig03": "ALU floorplan: logic scattered, sensitive endpoints marked",
    "fig04": "C6288 floorplan: logic scattered, sensitive endpoints marked",
    "fig05": "raw ALU bits look random once 8000 ROs enable",
    "fig06": "TDC droop ~30->10 with overshoot; ALU HW tracks same shape",
    "fig07": "ALU census: 79 RO-sensitive, 40 AES (39 subset), 112 unaffected",
    "fig08": "per-bit variance; ALU bit 21 highest",
    "fig09": "CPA via TDC (all bits): few hundred traces",
    "fig10": "CPA via ALU Hamming weight: ~150k traces",
    "fig11": "CPA via single TDC bit 32: few hundred traces",
    "fig12": "CPA via single ALU bit 21: ~200k traces",
    "fig13": "CPA via alternate ALU bit 6: ~150k traces",
    "fig14": "raw C6288 bits toggle under ROs; 49 of 64 sensitive",
    "fig15": "C6288 census: 49 RO, 32 AES (all subset), 15 unaffected",
    "fig16": "per-bit variance; C6288 bit 28 among the best",
    "fig17": "CPA via C6288 Hamming weight (2 instances): ~200k traces",
    "fig18": "CPA via single C6288 bit 28: ~100k traces",
}

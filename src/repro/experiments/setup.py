"""Assembly of the paper's experimental system (Fig. 2).

:class:`ExperimentSetup` builds and caches the heavyweight pieces —
placed/calibrated benign sensors, attack campaigns, the device
floorplan — so the per-figure drivers stay declarative.  One setup
object corresponds to one implementation run of the paper's design on
one board.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.aes.aes128 import AES128
from repro.circuits.library import get_circuit_spec
from repro.core.attack import AttackCampaign, CharacterizationResult
from repro.core.endpoint_sensor import BenignSensor
from repro.experiments.config import ExperimentConfig
from repro.fabric.clocking import ClockTree, paper_clock_tree
from repro.fabric.device import FpgaDevice, default_multi_tenant_device
from repro.fabric.floorplan import Floorplan
from repro.fabric.placement import Placement, place_netlist
from repro.sensors.tdc import TDCSensor
from repro.util.rng import derive_seed


class ExperimentSetup:
    """Caches sensors, campaigns and the floorplan for one config."""

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config or ExperimentConfig()
        self.cipher = AES128(self.config.key)
        self.tdc = TDCSensor()
        self.clock_tree: ClockTree = paper_clock_tree()
        self._sensors: Dict[str, BenignSensor] = {}
        self._campaigns: Dict[str, AttackCampaign] = {}
        self._characterizations: Dict[str, CharacterizationResult] = {}
        self._bit_rankings: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Cached builders
    # ------------------------------------------------------------------
    def sensor(self, circuit: str) -> BenignSensor:
        """The calibrated benign sensor for a registry circuit."""
        if circuit not in self._sensors:
            self._sensors[circuit] = BenignSensor.from_name(
                circuit,
                implementation_seed=self.config.seed,
                overclock_mhz=self.config.overclock_mhz,
            )
        return self._sensors[circuit]

    def campaign(self, circuit: str) -> AttackCampaign:
        """The attack campaign wired to a circuit's sensor."""
        if circuit not in self._campaigns:
            self._campaigns[circuit] = AttackCampaign(
                self.sensor(circuit),
                self.cipher,
                seed=derive_seed(self.config.seed, "campaign", circuit),
            )
        return self._campaigns[circuit]

    def characterization(self, circuit: str) -> CharacterizationResult:
        """The RO/AES characterization for a circuit (cached)."""
        if circuit not in self._characterizations:
            self._characterizations[circuit] = self.campaign(
                circuit
            ).characterize(
                num_samples=self.config.characterization_samples
            )
        return self._characterizations[circuit]

    def single_bit_ranking(self, circuit: str) -> List[int]:
        """Trial-CPA ranking of single-bit sensor endpoints (cached).

        The paper picks its single-bit endpoints (ALU bits 21/6, C6288
        bit 28) by offline analysis of the collected traces; this is
        the equivalent selection for this implementation run.
        """
        if circuit not in self._bit_rankings:
            self.characterization(circuit)
            trial = min(100_000, self.config.num_traces)
            self._bit_rankings[circuit] = self.campaign(
                circuit
            ).select_single_bit(
                trial_traces=trial,
                target_byte=self.config.target_byte,
                target_bit=self.config.target_bit,
            )
        return self._bit_rankings[circuit]

    # ------------------------------------------------------------------
    # Floorplans (Figs. 3 / 4)
    # ------------------------------------------------------------------
    def floorplan(self, circuit: str) -> Tuple[FpgaDevice, Floorplan]:
        """Place the circuit and mark its sensitive endpoints.

        Returns the populated device and a renderable floorplan where
        the benign circuit's sensitive endpoints (from the RO census)
        carry the marker glyph — the red sites of Figs. 3/4.
        """
        device = default_multi_tenant_device()
        spec = get_circuit_spec(circuit)
        characterization = self.characterization(circuit)
        sensitive = characterization.census.ro_sensitive

        placements: List[Placement] = []
        sensitive_nets: Dict[int, List[str]] = {}
        region = device.region("attacker_benign")
        bits_per_instance = len(spec.endpoint_nets)
        for index in range(spec.instances):
            netlist = spec.build()
            placement = place_netlist(
                netlist,
                region,
                seed=derive_seed(self.config.seed, "place", circuit, index),
            )
            offset = index * bits_per_instance
            nets = [
                net
                for bit, net in enumerate(spec.endpoint_nets)
                if sensitive[offset + bit]
            ]
            sensitive_nets[len(placements)] = nets
            placements.append(placement)
        floorplan = Floorplan(device, placements, sensitive_nets)
        return device, floorplan

"""CPA key-recovery experiments (paper Sec. V-B/C/D, Figs. 9-13/17/18).

Each driver runs one figure's attack and returns a
:class:`CPAExperimentOutcome` carrying the correlation-progress data
(the paper's subfigure (b)), the final per-candidate correlations
(subfigure (a)) and the measurements-to-disclosure headline number.

Benign-sensor figures (10/12/13/17/18) run through the sharded
campaign driver (:func:`repro.experiments.parallel.sharded_attack`),
honouring ``config.max_workers``; the result is bit-identical to the
serial :meth:`AttackCampaign.attack` path.  The TDC/RO baselines keep
the serial path — their sensors draw a single whole-campaign noise
stream that is not partitionable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.attacks.cpa import CPAResult
from repro.attacks.metrics import summarize
from repro.core.attack import REDUCTION_HW, REDUCTION_SINGLE_BIT
from repro.experiments.parallel import sharded_attack
from repro.experiments.setup import ExperimentSetup


@dataclass
class CPAExperimentOutcome:
    """Result record of one CPA figure.

    Attributes:
        figure: figure identifier (``"fig10"``...).
        label: human-readable description of the sensor configuration.
        result: the full CPA result (progress + final correlations).
        sensor_bit: endpoint/tap index for single-bit experiments.
    """

    figure: str
    label: str
    result: CPAResult
    sensor_bit: Optional[int] = None

    @property
    def mtd(self) -> Optional[int]:
        return self.result.measurements_to_disclosure()

    @property
    def disclosed(self) -> bool:
        return self.result.disclosed

    def summary_row(self) -> Dict[str, object]:
        """One row for the EXPERIMENTS.md table."""
        summary = summarize(self.figure, self.result)
        return {
            "figure": self.figure,
            "label": self.label,
            "num_traces": summary.num_traces,
            "disclosed": summary.disclosed,
            "mtd": summary.mtd,
            "final_margin": round(summary.final_margin, 4),
            "sensor_bit": self.sensor_bit,
        }


def fig09_cpa_tdc(setup: ExperimentSetup) -> CPAExperimentOutcome:
    """Fig. 9: CPA with the full TDC readout."""
    result = setup.campaign("alu").attack_with_tdc(
        setup.config.num_traces,
        tdc=setup.tdc,
        target_byte=setup.config.target_byte,
        target_bit=setup.config.target_bit,
    )
    return CPAExperimentOutcome("fig09", "TDC, decoded readout", result)


def fig10_cpa_alu(setup: ExperimentSetup) -> CPAExperimentOutcome:
    """Fig. 10: CPA with the ALU Hamming-weight sensor."""
    result = sharded_attack(
        setup.campaign("alu"),
        setup.config.num_traces,
        reduction=REDUCTION_HW,
        target_byte=setup.config.target_byte,
        target_bit=setup.config.target_bit,
        max_workers=setup.config.max_workers,
        executor=setup.config.executor,
    )
    return CPAExperimentOutcome(
        "fig10", "ALU @300 MHz, HW of sensitive bits", result
    )


def fig11_cpa_tdc_single(
    setup: ExperimentSetup, bit: int = 32
) -> CPAExperimentOutcome:
    """Fig. 11: CPA with a single TDC tap register (bit 32)."""
    result = setup.campaign("alu").attack_with_tdc(
        setup.config.num_traces,
        tdc=setup.tdc,
        bit=bit,
        target_byte=setup.config.target_byte,
        target_bit=setup.config.target_bit,
    )
    return CPAExperimentOutcome(
        "fig11", "TDC, single tap bit %d" % bit, result, sensor_bit=bit
    )


def fig12_cpa_alu_best_bit(setup: ExperimentSetup) -> CPAExperimentOutcome:
    """Fig. 12: CPA with the ALU's best single endpoint.

    The paper's implementation run lands on bit 21; the equivalent
    endpoint of this implementation run is selected by the same offline
    analysis (trial CPA over the top-ranked candidates).
    """
    bit = setup.single_bit_ranking("alu")[0]
    result = sharded_attack(
        setup.campaign("alu"),
        setup.config.num_traces,
        reduction=REDUCTION_SINGLE_BIT,
        bit=bit,
        target_byte=setup.config.target_byte,
        target_bit=setup.config.target_bit,
        max_workers=setup.config.max_workers,
        executor=setup.config.executor,
    )
    return CPAExperimentOutcome(
        "fig12", "ALU, single endpoint (paper: bit 21)", result,
        sensor_bit=bit,
    )


def fig13_cpa_alu_alternate_bit(
    setup: ExperimentSetup,
) -> CPAExperimentOutcome:
    """Fig. 13: CPA with an alternate ALU endpoint (paper: bit 6)."""
    bit = setup.single_bit_ranking("alu")[1]
    result = sharded_attack(
        setup.campaign("alu"),
        setup.config.num_traces,
        reduction=REDUCTION_SINGLE_BIT,
        bit=bit,
        target_byte=setup.config.target_byte,
        target_bit=setup.config.target_bit,
        max_workers=setup.config.max_workers,
        executor=setup.config.executor,
    )
    return CPAExperimentOutcome(
        "fig13", "ALU, alternate endpoint (paper: bit 6)", result,
        sensor_bit=bit,
    )


def fig17_cpa_c6288(setup: ExperimentSetup) -> CPAExperimentOutcome:
    """Fig. 17: CPA with the 2x C6288 Hamming-weight sensor."""
    result = sharded_attack(
        setup.campaign("c6288x2"),
        setup.config.num_traces,
        reduction=REDUCTION_HW,
        target_byte=setup.config.target_byte,
        target_bit=setup.config.target_bit,
        max_workers=setup.config.max_workers,
        executor=setup.config.executor,
    )
    return CPAExperimentOutcome(
        "fig17", "2x C6288 @300 MHz, HW of 64-bit word", result
    )


def fig18_cpa_c6288_best_bit(
    setup: ExperimentSetup,
) -> CPAExperimentOutcome:
    """Fig. 18: CPA with the C6288's best single endpoint (paper: 28)."""
    bit = setup.single_bit_ranking("c6288x2")[0]
    result = sharded_attack(
        setup.campaign("c6288x2"),
        setup.config.num_traces,
        reduction=REDUCTION_SINGLE_BIT,
        bit=bit,
        target_byte=setup.config.target_byte,
        target_bit=setup.config.target_bit,
        max_workers=setup.config.max_workers,
        executor=setup.config.executor,
    )
    return CPAExperimentOutcome(
        "fig18", "C6288, single endpoint (paper: bit 28)", result,
        sensor_bit=bit,
    )


#: Figure id -> driver, for generic runners.
CPA_FIGURES: Dict[str, Callable[[ExperimentSetup], CPAExperimentOutcome]] = {
    "fig09": fig09_cpa_tdc,
    "fig10": fig10_cpa_alu,
    "fig11": fig11_cpa_tdc_single,
    "fig12": fig12_cpa_alu_best_bit,
    "fig13": fig13_cpa_alu_alternate_bit,
    "fig17": fig17_cpa_c6288,
    "fig18": fig18_cpa_c6288_best_bit,
}

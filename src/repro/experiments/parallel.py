"""Sharded, mergeable CPA campaign driver.

A half-million-trace campaign decomposes naturally: trace generation
(sensor sampling) and hypothesis building are embarrassingly parallel
over disjoint trace ranges, and the CPA statistic is a set of running
sums, so per-shard :class:`~repro.attacks.cpa.StreamingCPA`
accumulators merge into exactly the single-stream state.

Determinism is preserved by construction:

* ciphertexts and victim voltages are drawn campaign-globally (one
  seeded draw for all N traces) before any sharding;
* shard boundaries are aligned to the campaign's
  :data:`~repro.core.attack.TRACE_CHUNK` grid, and each chunk's jitter
  seed is keyed on its *global* start index — the same derivation the
  serial collector uses — so every worker reproduces the exact leakage
  the serial path would have produced;
* leakage and hypothesis values are integer-valued, so the running
  sums are float-exact and merging is order-independent: the sharded
  result is bit-identical to :func:`repro.attacks.cpa.run_cpa`.

Workers run on a :class:`concurrent.futures.ThreadPoolExecutor`; the
heavy kernels (waveform-bank sampling, the hypothesis table lookups,
the accumulator GEMV) are numpy calls that release the GIL for most of
their runtime.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.aes.leakage import random_ciphertexts
from repro.attacks.cpa import (
    CPAResult,
    StreamingCPA,
    default_checkpoints,
)
from repro.attacks.full_key import FullKeyResult, recover_last_round_key
from repro.attacks.models import (
    DEFAULT_TARGET_BIT,
    DEFAULT_TARGET_BYTE,
    single_bit_hypothesis,
)
from repro.core.attack import (
    REDUCTION_HW,
    TRACE_CHUNK,
    AttackCampaign,
)
from repro.util.rng import derive_seed


def default_workers() -> int:
    """Worker count when the caller does not specify one."""
    return min(8, os.cpu_count() or 1)


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous trace range ``[start, end)``."""

    start: int
    end: int

    @property
    def num_traces(self) -> int:
        return self.end - self.start


def plan_shards(
    num_traces: int,
    num_shards: Optional[int] = None,
    chunk_size: int = TRACE_CHUNK,
) -> List[Shard]:
    """Split ``[0, num_traces)`` into chunk-aligned contiguous shards.

    Shard boundaries land on multiples of ``chunk_size`` (except the
    final partial chunk), because per-chunk jitter seeds are keyed on
    the chunk grid; splitting mid-chunk would change the sampled noise
    relative to the serial path.
    """
    if num_traces < 1:
        raise ValueError("need at least one trace")
    if chunk_size < 1:
        raise ValueError("chunk size must be positive")
    num_chunks = -(-num_traces // chunk_size)
    shards = min(num_shards or default_workers(), num_chunks)
    shards = max(1, shards)
    # Distribute whole chunks as evenly as possible.
    per_shard, extra = divmod(num_chunks, shards)
    plan: List[Shard] = []
    chunk_cursor = 0
    for index in range(shards):
        take = per_shard + (1 if index < extra else 0)
        start = chunk_cursor * chunk_size
        chunk_cursor += take
        end = min(chunk_cursor * chunk_size, num_traces)
        plan.append(Shard(start, end))
    return plan


def _normalize_checkpoints(
    checkpoints: Optional[Sequence[int]], num_traces: int
) -> np.ndarray:
    """Checkpoint grid with the same contract as :func:`run_cpa`."""
    if checkpoints is None:
        return default_checkpoints(num_traces)
    points = np.unique(np.asarray(checkpoints, dtype=np.int64))
    if points.size == 0 or points[0] < 2 or points[-1] > num_traces:
        raise ValueError("checkpoints must lie in [2, num_traces]")
    if points[-1] != num_traces:
        points = np.append(points, num_traces)
    return points


def _segment_ends(shard: Shard, points: np.ndarray) -> List[int]:
    """Shard-internal segment boundaries: checkpoints, then shard end."""
    inside = points[(points > shard.start) & (points < shard.end)]
    return [int(p) for p in inside] + [shard.end]


def _map_shards(work, shards: List[Shard], max_workers: Optional[int]):
    """Run ``work`` over shards, in order, optionally in parallel."""
    workers = max_workers if max_workers is not None else default_workers()
    if workers <= 1 or len(shards) <= 1:
        return [work(shard) for shard in shards]
    with ThreadPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(work, shards))


def sharded_attack(
    campaign: AttackCampaign,
    num_traces: int,
    reduction: str = REDUCTION_HW,
    bit: Optional[int] = None,
    target_byte: int = DEFAULT_TARGET_BYTE,
    target_bit: int = DEFAULT_TARGET_BIT,
    checkpoints: Optional[Sequence[int]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = TRACE_CHUNK,
) -> CPAResult:
    """Parallel drop-in for :meth:`AttackCampaign.attack`.

    Trace generation and hypothesis building are sharded across
    workers; each worker accumulates one :class:`StreamingCPA` partial
    per checkpoint segment of its shard, and the driver merges the
    partials in trace order, evaluating correlations whenever a merge
    boundary is a checkpoint.  The result is bit-identical to the
    serial path for the same seed (see module docstring).

    Args:
        campaign: characterized attack campaign.
        num_traces / reduction / bit / target_byte / target_bit /
            checkpoints: as in :meth:`AttackCampaign.attack`.
        max_workers: worker threads (default: :func:`default_workers`;
            pass 1 to force in-process serial execution).
        chunk_size: trace-generation block length; must stay on the
            campaign's chunk grid to reproduce the serial jitter seeds.
    """
    if num_traces < 2:
        raise ValueError("need at least 2 traces")
    mask, bit = campaign.resolve_reduction(reduction, bit)
    ciphertexts, voltages = campaign.campaign_inputs(num_traces)
    points = _normalize_checkpoints(checkpoints, num_traces)
    shards = plan_shards(num_traces, max_workers, chunk_size)

    def work(shard: Shard) -> List[Tuple[int, StreamingCPA]]:
        leakage = np.empty(shard.num_traces, dtype=np.float64)
        for start in range(shard.start, shard.end, chunk_size):
            end = min(start + chunk_size, shard.end)
            leakage[start - shard.start : end - shard.start] = (
                campaign.reduced_leakage_block(
                    voltages[start:end], start, reduction, mask, bit
                )
            )
        hypotheses = single_bit_hypothesis(
            ciphertexts[shard.start : shard.end, target_byte],
            bit=target_bit,
        )
        partials: List[Tuple[int, StreamingCPA]] = []
        previous = shard.start
        for segment_end in _segment_ends(shard, points):
            engine = StreamingCPA(num_candidates=hypotheses.shape[1])
            engine.update(
                leakage[previous - shard.start : segment_end - shard.start],
                hypotheses[
                    previous - shard.start : segment_end - shard.start
                ],
            )
            partials.append((segment_end, engine))
            previous = segment_end
        return partials

    per_shard = _map_shards(work, shards, max_workers)

    running = StreamingCPA(num_candidates=256)
    rows: List[np.ndarray] = []
    checkpoint_set = {int(p) for p in points}
    for partials in per_shard:
        for boundary, engine in partials:
            running.merge(engine)
            if boundary in checkpoint_set:
                rows.append(running.correlations())
    return CPAResult(
        checkpoints=points,
        correlations=np.vstack(rows),
        correct_key=campaign.cipher.last_round_key[target_byte],
    )


def sharded_full_key(
    campaign: AttackCampaign,
    num_traces: int,
    target_bit: int = DEFAULT_TARGET_BIT,
    checkpoints: Optional[List[int]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = TRACE_CHUNK,
) -> FullKeyResult:
    """Parallel drop-in for :meth:`AttackCampaign.attack_full_key`.

    Column-resolved trace collection is sharded across workers (chunk
    seeds keyed on the global ``(column, start)`` grid, identical to
    the serial collector), then the 16 per-byte CPAs run in parallel.
    """
    if num_traces < 2:
        raise ValueError("need at least 2 traces")
    mask, _ = campaign.resolve_reduction(REDUCTION_HW)
    ciphertexts = random_ciphertexts(
        num_traces, seed=derive_seed(campaign.seed, "campaign-ct")
    )
    voltages = campaign.leakage.column_voltages(
        ciphertexts,
        campaign.cipher.last_round_key,
        seed=derive_seed(campaign.seed, "campaign-noise"),
    )
    shards = plan_shards(num_traces, max_workers, chunk_size)
    leakage = np.empty((num_traces, 4), dtype=np.float64)

    def work(shard: Shard) -> None:
        for column in range(4):
            for start in range(shard.start, shard.end, chunk_size):
                end = min(start + chunk_size, shard.end)
                leakage[start:end, column] = campaign.column_leakage_block(
                    voltages[start:end, column], start, column, mask
                )

    _map_shards(work, shards, max_workers)
    return recover_last_round_key(
        leakage,
        ciphertexts,
        target_bit=target_bit,
        correct_key=campaign.cipher.last_round_key,
        checkpoints=checkpoints,
        max_workers=max_workers,
    )

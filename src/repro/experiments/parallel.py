"""Sharded, mergeable, fault-tolerant CPA campaign driver.

A half-million-trace campaign decomposes naturally: trace generation
(sensor sampling) and hypothesis building are embarrassingly parallel
over disjoint trace ranges, and the CPA statistic is a set of running
sums, so per-shard :class:`~repro.attacks.cpa.StreamingCPA`
accumulators merge into exactly the single-stream state.

Determinism is preserved by construction:

* ciphertexts and victim voltages are drawn campaign-globally (one
  seeded draw for all N traces) before any sharding;
* shard boundaries are aligned to the campaign's
  :data:`~repro.core.attack.TRACE_CHUNK` grid, and each chunk's jitter
  seed is keyed on its *global* start index — the same derivation the
  serial collector uses — so every worker reproduces the exact leakage
  the serial path would have produced;
* leakage and hypothesis values are integer-valued, so the running
  sums are float-exact and merging is order-independent: the sharded
  result is bit-identical to :func:`repro.attacks.cpa.run_cpa`.

Workers run on either backend of
:func:`repro.util.executors.map_ordered`: the default thread pool (the
heavy kernels — waveform-bank sampling, hypothesis table lookups, the
accumulator GEMV — are numpy calls that release the GIL for most of
their runtime) or, with ``executor="process"``, a process pool whose
shard tasks are module-level functions with picklable payloads,
buying real multi-core scaling for the Python-bound stages.  Both
backends produce bit-identical results at any worker count.

The same determinism is what makes the campaign *fault-tolerant*:
because every shard task is a pure function of its payload, the
runtime may retry a failed shard, rebuild a broken process pool, or
degrade ``process -> thread -> serial``
(:class:`repro.util.executors.RetryPolicy`) without any effect on the
result.  Passing ``checkpoint_path`` makes progress durable: after
every ``checkpoint_every`` completed shards the merged accumulator
state and a configuration-fingerprinted manifest are atomically
written (:mod:`repro.experiments.checkpoint`), and ``resume=True``
continues a killed campaign from the last checkpoint, bit-identical
to an uninterrupted run.  Deterministic fault injection for all of
these paths lives in :mod:`repro.util.faults`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aes.leakage import random_ciphertexts
from repro.attacks.cpa import (
    CPAResult,
    StreamingCPA,
    default_checkpoints,
)
from repro.attacks.full_key import (
    FullKeyResult,
    column_of_key_byte,
    recover_last_round_key,
)
from repro.attacks.models import (
    DEFAULT_TARGET_BIT,
    DEFAULT_TARGET_BYTE,
    single_bit_hypothesis,
)
from repro.core.attack import (
    REDUCTION_HW,
    TRACE_CHUNK,
    AttackCampaign,
)
from repro.core.endpoint_sensor import BenignSensor
from repro.core.postprocess import hamming_weight_series
from repro.core.tracegen import PhysicalTraceGenerator, random_plaintexts
from repro.experiments.checkpoint import (
    CampaignCheckpoint,
    CampaignManifest,
    load_checkpoint,
    save_checkpoint,
    split_rows,
    verify_manifest,
)
from repro.preprocess.pipeline import ResolvedPreprocess
from repro.util.executors import (
    CampaignHealth,
    RetryPolicy,
    TruncatedResultError,
    default_workers,
    map_ordered,
)
from repro.util.faults import FaultPlan, poison_leakage
from repro.util.rng import derive_seed
from repro.util.shm import ArrayFanout, fanout_state

__all__ = [
    "DEFAULT_CHUNK_WORKING_SET_BYTES",
    "Shard",
    "default_workers",
    "plan_chunk_size",
    "plan_shards",
    "sharded_attack",
    "sharded_full_key",
    "sharded_physical_attack",
    "sharded_physical_full_key",
]


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous trace range ``[start, end)``."""

    start: int
    end: int

    @property
    def num_traces(self) -> int:
        return self.end - self.start

    @property
    def site(self) -> str:
        """Stable identity for fault keying and health reports."""
        return "shard[%d:%d]" % (self.start, self.end)


def plan_shards(
    num_traces: int,
    num_shards: Optional[int] = None,
    chunk_size: int = TRACE_CHUNK,
) -> List[Shard]:
    """Split ``[0, num_traces)`` into chunk-aligned contiguous shards.

    Shard boundaries land on multiples of ``chunk_size`` (except the
    final partial chunk), because per-chunk jitter seeds are keyed on
    the chunk grid; splitting mid-chunk would change the sampled noise
    relative to the serial path.
    """
    if num_traces < 1:
        raise ValueError("need at least one trace")
    if chunk_size < 1:
        raise ValueError("chunk size must be positive")
    num_chunks = -(-num_traces // chunk_size)
    shards = min(num_shards or default_workers(), num_chunks)
    shards = max(1, shards)
    # Distribute whole chunks as evenly as possible.
    per_shard, extra = divmod(num_chunks, shards)
    plan: List[Shard] = []
    chunk_cursor = 0
    for index in range(shards):
        take = per_shard + (1 if index < extra else 0)
        start = chunk_cursor * chunk_size
        chunk_cursor += take
        end = min(chunk_cursor * chunk_size, num_traces)
        plan.append(Shard(start, end))
    return plan


#: Default per-chunk working-set budget.  A chunk's arrays (voltages,
#: sampled bits, jitter draws, currents/droops for the physical path)
#: should stay resident in a per-core last-level-cache slice while the
#: numpy kernels stream over them; a few MiB is the sweet spot on
#: commodity parts, and the exact value only shifts constant factors.
DEFAULT_CHUNK_WORKING_SET_BYTES = 4 << 20


def plan_chunk_size(
    num_traces: int,
    bytes_per_trace: int,
    workers: Optional[int] = None,
    target_bytes: int = DEFAULT_CHUNK_WORKING_SET_BYTES,
) -> int:
    """Trace-chunk length derived from working-set footprint.

    Sizing chunks as ``num_traces / k`` couples the working set to the
    campaign size: a 100k-trace campaign on 4 workers used to process
    12.5k-trace chunks whose temporaries spill every cache level.  This
    derives the chunk from how many traces *fit* instead:

    * at most ``target_bytes / bytes_per_trace`` traces per chunk, so
      one chunk's arrays stay cache-resident;
    * at least one chunk per worker (when ``num_traces`` allows), so
      the pool is saturated regardless of footprint;
    * never more than ``num_traces``.

    The chunk size feeds the campaign's jitter-seed grid, so the serial
    baseline of any comparison must be collected at the same chunk size
    — exactly as with a hand-picked value.

    Args:
        num_traces: campaign length.
        bytes_per_trace: per-trace footprint of the generation pipeline
            (see :meth:`AttackCampaign.working_set_bytes_per_trace` and
            :meth:`PhysicalTraceGenerator.working_set_bytes_per_trace`).
        workers: worker count (default :func:`default_workers`).
        target_bytes: per-chunk working-set budget.
    """
    if num_traces < 1:
        raise ValueError("need at least one trace")
    if bytes_per_trace < 1:
        raise ValueError("bytes_per_trace must be positive")
    if target_bytes < 1:
        raise ValueError("target_bytes must be positive")
    chunk = max(1, target_bytes // bytes_per_trace)
    count = workers if workers is not None else default_workers()
    if count > 1:
        chunk = min(chunk, -(-num_traces // count))
    return int(max(1, min(chunk, num_traces)))


def _normalize_checkpoints(
    checkpoints: Optional[Sequence[int]], num_traces: int
) -> np.ndarray:
    """Checkpoint grid with the same contract as :func:`run_cpa`."""
    if checkpoints is None:
        return default_checkpoints(num_traces)
    points = np.unique(np.asarray(checkpoints, dtype=np.int64))
    if points.size == 0 or points[0] < 2 or points[-1] > num_traces:
        raise ValueError("checkpoints must lie in [2, num_traces]")
    if points[-1] != num_traces:
        points = np.append(points, num_traces)
    return points


def _segment_ends(shard: Shard, points: np.ndarray) -> List[int]:
    """Shard-internal segment boundaries: checkpoints, then shard end."""
    inside = points[(points > shard.start) & (points < shard.end)]
    return [int(p) for p in inside] + [shard.end]


def _attack_shard_task(
    task: Dict[str, object]
) -> List[Tuple[int, StreamingCPA]]:
    """One shard's trace generation + per-segment CPA accumulation.

    Module-level and picklable, but the payload is only a context id
    plus the shard descriptor: the campaign object arrives fork-once
    per worker, and the campaign-global input arrays are read in place
    (driver memory or a shared-memory mapping — see
    :class:`repro.util.shm.ArrayFanout`), so neither a task nor a
    retry re-serializes anything heavier than a few hundred bytes.
    """
    state = fanout_state(task["ctx"])
    campaign: AttackCampaign = state.heavy["campaign"]
    shard: Shard = task["shard"]
    voltages = state.array("voltages")
    ct_bytes = state.array("ct_bytes")
    segment_ends: List[int] = task["segment_ends"]
    chunk_size: int = state.heavy["chunk_size"]

    leakage = np.empty(shard.num_traces, dtype=np.float64)
    for start in range(shard.start, shard.end, chunk_size):
        end = min(start + chunk_size, shard.end)
        leakage[start - shard.start : end - shard.start] = (
            campaign.reduced_leakage_block(
                voltages[start:end],
                start,
                state.heavy["reduction"],
                state.heavy["mask"],
                state.heavy["bit"],
            )
        )
    leakage = poison_leakage(leakage)
    hypotheses = single_bit_hypothesis(
        ct_bytes[shard.start : shard.end],
        bit=state.heavy["target_bit"],
    )
    partials: List[Tuple[int, StreamingCPA]] = []
    previous = shard.start
    for segment_end in segment_ends:
        engine = StreamingCPA(num_candidates=hypotheses.shape[1])
        engine.update(
            leakage[previous - shard.start : segment_end - shard.start],
            hypotheses[previous - shard.start : segment_end - shard.start],
        )
        partials.append((segment_end, engine))
        previous = segment_end
    return partials


def _validate_partials(task: Dict[str, object], result: object) -> None:
    """Reject truncated/corrupt shard payloads before they merge."""
    expected = list(task["segment_ends"])
    shard: Shard = task["shard"]
    if not isinstance(result, (list, tuple)):
        raise TruncatedResultError(
            shard.site, "a list of partials", type(result).__name__
        )
    boundaries = [boundary for boundary, _ in result]
    if boundaries != expected:
        raise TruncatedResultError(
            shard.site,
            "segment boundaries %s" % expected,
            "%s" % boundaries,
        )


def _validate_column_block(
    task: Dict[str, object], result: object
) -> None:
    """Reject truncated column-leakage blocks before they stack."""
    shard: Shard = task["shard"]
    expected = (shard.num_traces, 4)
    shape = getattr(result, "shape", None)
    if shape != expected:
        raise TruncatedResultError(
            shard.site, "leakage block %s" % (expected,), "%s" % (shape,)
        )


def _run_checkpointed_cpa(
    task_fn: Callable[[Dict[str, object]], List[Tuple[int, StreamingCPA]]],
    tasks: List[Dict[str, object]],
    shards: List[Shard],
    points: np.ndarray,
    correct_key: int,
    manifest: CampaignManifest,
    max_workers: Optional[int],
    executor: Optional[str],
    policy: Optional[RetryPolicy],
    fault_plan: Optional[FaultPlan],
    health: Optional[CampaignHealth],
    checkpoint_path: Optional[str],
    checkpoint_every: Optional[int],
    resume: bool,
    map_kwargs: Optional[Dict[str, object]] = None,
) -> CPAResult:
    """Shared group-wise execute/merge/checkpoint loop of the two CPA
    drivers.

    Shards run in groups of ``checkpoint_every``; after each group the
    merged running state becomes durable.  Because groups complete in
    trace order, the completed set is always a shard-plan prefix, and
    a resumed run replays the identical merge sequence.
    """
    running = StreamingCPA(num_candidates=256)
    rows: List[np.ndarray] = []
    completed = 0
    if resume and checkpoint_path is not None and os.path.exists(
        checkpoint_path
    ):
        stored = load_checkpoint(checkpoint_path)
        verify_manifest(checkpoint_path, stored.manifest, manifest)
        completed = stored.completed_shards
        running = StreamingCPA.from_state_arrays(
            {
                key[len("engine_"):]: value
                for key, value in stored.arrays.items()
                if key.startswith("engine_")
            }
        )
        rows = split_rows(stored.arrays["rows"])

    robust = (
        policy is not None
        or fault_plan is not None
        or health is not None
        or checkpoint_path is not None
    )
    group = len(tasks)
    if checkpoint_path is not None:
        # Default group = worker count, so durability costs no
        # parallelism (a group is one map_ordered call).
        group = max(1, checkpoint_every or max_workers or default_workers())
    checkpoint_set = {int(p) for p in points}
    while completed < len(tasks):
        stop = min(completed + group, len(tasks))
        kwargs: Dict[str, object] = {}
        if robust:
            kwargs = dict(
                policy=policy,
                fault_plan=fault_plan,
                sites=[shard.site for shard in shards[completed:stop]],
                health=health,
                validate=_validate_partials,
            )
        per_shard = map_ordered(
            task_fn,
            tasks[completed:stop],
            max_workers=max_workers,
            executor=executor,
            **dict(map_kwargs or {}),
            **kwargs,
        )
        for partials in per_shard:
            for boundary, engine in partials:
                running.merge(engine)
                if boundary in checkpoint_set:
                    rows.append(running.correlations())
        completed = stop
        if checkpoint_path is not None:
            arrays: Dict[str, np.ndarray] = {
                "rows": np.vstack(rows)
                if rows
                else np.zeros((0, running.num_candidates))
            }
            arrays.update(
                {
                    "engine_" + key: value
                    for key, value in running.state_arrays().items()
                }
            )
            save_checkpoint(
                checkpoint_path,
                CampaignCheckpoint(
                    manifest=manifest,
                    completed_shards=completed,
                    arrays=arrays,
                ),
            )
    return CPAResult(
        checkpoints=points,
        correlations=np.vstack(rows),
        correct_key=correct_key,
    )


def sharded_attack(
    campaign: AttackCampaign,
    num_traces: int,
    reduction: str = REDUCTION_HW,
    bit: Optional[int] = None,
    target_byte: int = DEFAULT_TARGET_BYTE,
    target_bit: int = DEFAULT_TARGET_BIT,
    checkpoints: Optional[Sequence[int]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = TRACE_CHUNK,
    executor: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    health: Optional[CampaignHealth] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: bool = False,
) -> CPAResult:
    """Parallel drop-in for :meth:`AttackCampaign.attack`.

    Trace generation and hypothesis building are sharded across
    workers; each worker accumulates one :class:`StreamingCPA` partial
    per checkpoint segment of its shard, and the driver merges the
    partials in trace order, evaluating correlations whenever a merge
    boundary is a checkpoint.  The result is bit-identical to the
    serial path for the same seed (see module docstring).

    Args:
        campaign: characterized attack campaign.
        num_traces / reduction / bit / target_byte / target_bit /
            checkpoints: as in :meth:`AttackCampaign.attack`.
        max_workers: worker count (default: :func:`default_workers`;
            pass 1 to force in-process serial execution).
        chunk_size: trace-generation block length; must stay on the
            campaign's chunk grid to reproduce the serial jitter seeds.
        executor: ``"thread"`` (default) or ``"process"`` — the
            :func:`repro.util.executors.map_ordered` backend.
        policy: retry/timeout/degradation policy; any fault-tolerance
            argument (also ``fault_plan``, ``health``,
            ``checkpoint_path``) switches shard execution into the
            resilient mode of :func:`map_ordered`.
        fault_plan: deterministic fault injection (tests only).
        health: accumulates the runtime's recovery events.
        checkpoint_path: write a durable checkpoint here after every
            ``checkpoint_every`` completed shards (atomic
            write-temp-then-rename).
        checkpoint_every: shards per checkpoint group (default: the
            worker count, so durability costs no parallelism).
        resume: continue from ``checkpoint_path`` if it exists; the
            stored manifest must fingerprint-match this configuration.
            The resumed result is bit-identical to an uninterrupted
            run.
    """
    if num_traces < 2:
        raise ValueError("need at least 2 traces")
    mask, bit = campaign.resolve_reduction(reduction, bit)
    ciphertexts, voltages = campaign.campaign_inputs(num_traces)
    points = _normalize_checkpoints(checkpoints, num_traces)
    shards = plan_shards(num_traces, max_workers, chunk_size)

    manifest = CampaignManifest(
        kind="attack",
        params={
            "campaign_seed": campaign.seed,
            "sensor": campaign.sensor.name,
            "last_round_key": campaign.cipher.last_round_key.hex(),
            "num_traces": int(num_traces),
            "reduction": reduction,
            "bit": None if bit is None else int(bit),
            "target_byte": int(target_byte),
            "target_bit": int(target_bit),
            "chunk_size": int(chunk_size),
        },
        shard_plan=tuple((s.start, s.end) for s in shards),
        checkpoints=tuple(int(p) for p in points),
    )
    with ArrayFanout(
        heavy={
            "campaign": campaign,
            "chunk_size": chunk_size,
            "reduction": reduction,
            "mask": mask,
            "bit": bit,
            "target_bit": target_bit,
        },
        arrays={
            "voltages": voltages,
            "ct_bytes": ciphertexts[:, target_byte],
        },
        executor=executor,
        workers=max_workers or default_workers(),
        num_tasks=len(shards),
    ) as fanout:
        tasks = [
            {
                "ctx": fanout.context_id,
                "shard": shard,
                "segment_ends": _segment_ends(shard, points),
            }
            for shard in shards
        ]
        return _run_checkpointed_cpa(
            _attack_shard_task,
            tasks,
            shards,
            points,
            campaign.cipher.last_round_key[target_byte],
            manifest,
            max_workers,
            executor,
            policy,
            fault_plan,
            health,
            checkpoint_path,
            checkpoint_every,
            resume,
            map_kwargs=fanout.map_kwargs,
        )


def _acquisition_manifest_params(
    generator: PhysicalTraceGenerator,
    preprocess: Optional[ResolvedPreprocess],
) -> Dict[str, object]:
    """Manifest entries for acquisition realism — only when active.

    Absent keys keep every pre-PR acquisition-free manifest (and hence
    config hash, checkpoint resume and service cache key) byte-stable.
    """
    params: Dict[str, object] = {}
    misalignment = getattr(generator, "misalignment", None)
    if misalignment is not None and misalignment.enabled:
        params["misalignment"] = misalignment.to_string()
    if preprocess is not None:
        params["preprocess"] = preprocess.spec.to_string()
    return params


def _physical_shard_task(
    task: Dict[str, object]
) -> List[Tuple[int, StreamingCPA]]:
    """One shard of the physical (waveform-level) campaign.

    Unlike :func:`_attack_shard_task`, the traces do not exist up
    front: each chunk is *generated* here — encryption, current
    waveform, PDN integration, sensor sampling — with its noise and
    jitter seeds keyed on the chunk's global start index, so any
    chunk-aligned sharding reproduces the identical campaign.
    """
    state = fanout_state(task["ctx"])
    generator: PhysicalTraceGenerator = state.heavy["generator"]
    sensor: BenignSensor = state.heavy["sensor"]
    shard: Shard = task["shard"]
    plaintexts = state.array("plaintexts")
    segment_ends: List[int] = task["segment_ends"]
    chunk_size: int = state.heavy["chunk_size"]
    seed: int = state.heavy["seed"]
    reference: bool = state.heavy["reference"]
    sample_index: int = state.heavy["sample_index"]
    preprocess: Optional[ResolvedPreprocess] = state.heavy.get("preprocess")

    generate = (
        generator.generate_reference if reference else generator.generate
    )
    leakage = np.empty(shard.num_traces, dtype=np.float64)
    ct_bytes = np.empty(shard.num_traces, dtype=np.uint8)
    for start in range(shard.start, shard.end, chunk_size):
        end = min(start + chunk_size, shard.end)
        local = slice(start - shard.start, end - shard.start)
        data = generate(
            plaintexts[start:end], seed=derive_seed(seed, "e2e-noise", start)
        )
        if preprocess is None:
            bits = sensor.sample_bits(
                data["voltages"][:, sample_index],
                seed=derive_seed(seed, "e2e-jitter", start),
                reference=reference,
            )
            leakage[local] = hamming_weight_series(
                bits, state.heavy["mask"]
            )
        else:
            # Shard-local vectorized preprocessing: align/crop/resample
            # the chunk, then sum the sensor's readings over the
            # resolved POI set (one jitter stream per POI, keyed on the
            # chunk's global start like every other chunk stream).
            processed = preprocess.apply(data["voltages"])
            total = np.zeros(end - start, dtype=np.float64)
            for poi, sample in enumerate(state.heavy["samples"]):
                bits = sensor.sample_bits(
                    processed[:, int(sample)],
                    seed=derive_seed(seed, "e2e-jitter", start, poi),
                    reference=reference,
                )
                total += hamming_weight_series(bits, state.heavy["mask"])
            leakage[local] = total
        ct_bytes[local] = data["ciphertexts"][:, state.heavy["target_byte"]]
    leakage = poison_leakage(leakage)
    hypotheses = single_bit_hypothesis(
        ct_bytes, bit=state.heavy["target_bit"]
    )
    partials: List[Tuple[int, StreamingCPA]] = []
    previous = shard.start
    for segment_end in segment_ends:
        engine = StreamingCPA(num_candidates=hypotheses.shape[1])
        engine.update(
            leakage[previous - shard.start : segment_end - shard.start],
            hypotheses[previous - shard.start : segment_end - shard.start],
        )
        partials.append((segment_end, engine))
        previous = segment_end
    return partials


def sharded_physical_attack(
    generator: PhysicalTraceGenerator,
    sensor: BenignSensor,
    num_traces: int,
    mask: Optional[np.ndarray] = None,
    target_byte: int = DEFAULT_TARGET_BYTE,
    target_bit: int = DEFAULT_TARGET_BIT,
    checkpoints: Optional[Sequence[int]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = TRACE_CHUNK,
    executor: Optional[str] = None,
    seed: int = 0,
    reference: bool = False,
    preprocess: Optional[ResolvedPreprocess] = None,
    policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    health: Optional[CampaignHealth] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: bool = False,
) -> CPAResult:
    """CPA campaign over *physically generated* traces.

    Every trace is simulated end to end
    (:class:`repro.core.tracegen.PhysicalTraceGenerator`): plaintext →
    datapath activity → current waveform → PDN droop → sensor sample →
    Hamming-weight reduction — and the CPA targets the byte's aligned
    last-round cycle, exactly as the analytical campaign does.

    Args:
        generator: physical trace generator (holds cipher + PDN).
        sensor: benign sensor sampling the aligned supply voltage.
        mask: sensitive-bit mask for the Hamming-weight reduction
            (None: all endpoint bits).
        target_byte / target_bit / checkpoints / max_workers /
            chunk_size / executor: as in :func:`sharded_attack`.
        seed: campaign seed (plaintexts, ambient noise, jitter).
        reference: run every stage through its per-trace pure-Python
            reference path instead of the vectorized kernels.  Both
            paths are bit-identical; this is the baseline the e2e
            benchmark times the fast path against.
        preprocess: resolved preprocessing plan
            (:func:`repro.preprocess.pipeline.resolve_preprocess`);
            each chunk is aligned/cropped/resampled shard-locally and
            the leakage sums the sensor's readings over the resolved
            POI set.  None (the default) leaves the campaign untouched.
        policy / fault_plan / health / checkpoint_path /
            checkpoint_every / resume: fault-tolerant runtime knobs,
            as in :func:`sharded_attack`.
    """
    if num_traces < 2:
        raise ValueError("need at least 2 traces")
    plaintexts = random_plaintexts(
        num_traces, seed=derive_seed(seed, "e2e-pt")
    )
    sample_index = int(
        generator.last_round_sample_indices()[column_of_key_byte(target_byte)]
    )
    samples = (
        None
        if preprocess is None
        else preprocess.samples_for_column(column_of_key_byte(target_byte))
    )
    points = _normalize_checkpoints(checkpoints, num_traces)
    shards = plan_shards(num_traces, max_workers, chunk_size)
    params = {
        "seed": int(seed),
        "sensor": sensor.name,
        "last_round_key": generator.cipher.last_round_key.hex(),
        "num_traces": int(num_traces),
        "mask": None if mask is None else np.asarray(mask).tolist(),
        "target_byte": int(target_byte),
        "target_bit": int(target_bit),
        "chunk_size": int(chunk_size),
        "reference": bool(reference),
        "sample_index": sample_index,
    }
    # Acquisition-realism keys enter the manifest only when active, so
    # every pre-existing config hash (and with it checkpoint resume and
    # service cache keys) stays byte-identical.
    params.update(_acquisition_manifest_params(generator, preprocess))
    manifest = CampaignManifest(
        kind="physical",
        params=params,
        shard_plan=tuple((s.start, s.end) for s in shards),
        checkpoints=tuple(int(p) for p in points),
    )
    with ArrayFanout(
        heavy={
            "generator": generator,
            "sensor": sensor,
            "chunk_size": chunk_size,
            "seed": seed,
            "reference": reference,
            "sample_index": sample_index,
            "mask": mask,
            "target_byte": target_byte,
            "target_bit": target_bit,
            "preprocess": preprocess,
            "samples": samples,
        },
        arrays={"plaintexts": plaintexts},
        executor=executor,
        workers=max_workers or default_workers(),
        num_tasks=len(shards),
    ) as fanout:
        tasks = [
            {
                "ctx": fanout.context_id,
                "shard": shard,
                "segment_ends": _segment_ends(shard, points),
            }
            for shard in shards
        ]
        return _run_checkpointed_cpa(
            _physical_shard_task,
            tasks,
            shards,
            points,
            generator.cipher.last_round_key[target_byte],
            manifest,
            max_workers,
            executor,
            policy,
            fault_plan,
            health,
            checkpoint_path,
            checkpoint_every,
            resume,
            map_kwargs=fanout.map_kwargs,
        )


def _physical_column_shard_task(task: Dict[str, object]) -> np.ndarray:
    """One shard's column-resolved *physical* leakage, ``(num, 4)``.

    Each chunk is generated end to end once (noise seed keyed on the
    chunk's global start, exactly like :func:`_physical_shard_task`),
    optionally preprocessed shard-locally, then read at every column's
    resolved sample set with per-``(chunk, column, poi)`` jitter
    streams — so any chunk-aligned sharding (including the fleet's)
    reproduces the identical leakage block.
    """
    state = fanout_state(task["ctx"])
    generator: PhysicalTraceGenerator = state.heavy["generator"]
    sensor: BenignSensor = state.heavy["sensor"]
    shard: Shard = task["shard"]
    plaintexts = state.array("plaintexts")
    chunk_size: int = state.heavy["chunk_size"]
    seed: int = state.heavy["seed"]
    mask: Optional[np.ndarray] = state.heavy["mask"]
    preprocess: Optional[ResolvedPreprocess] = state.heavy.get("preprocess")
    column_samples: Dict[int, np.ndarray] = state.heavy["column_samples"]

    leakage = np.empty((shard.num_traces, 4), dtype=np.float64)
    for start in range(shard.start, shard.end, chunk_size):
        end = min(start + chunk_size, shard.end)
        local = slice(start - shard.start, end - shard.start)
        data = generator.generate(
            plaintexts[start:end], seed=derive_seed(seed, "e2e-noise", start)
        )
        voltages = (
            data["voltages"]
            if preprocess is None
            else preprocess.apply(data["voltages"])
        )
        for column in range(4):
            total = np.zeros(end - start, dtype=np.float64)
            for poi, sample in enumerate(column_samples[column]):
                bits = sensor.sample_bits(
                    voltages[:, int(sample)],
                    seed=derive_seed(
                        seed, "e2e-col-jitter", start, column, poi
                    ),
                )
                total += hamming_weight_series(bits, mask)
            leakage[local, column] = total
    return poison_leakage(leakage)


def sharded_physical_full_key(
    generator: PhysicalTraceGenerator,
    sensor: BenignSensor,
    num_traces: int,
    mask: Optional[np.ndarray] = None,
    target_bit: int = DEFAULT_TARGET_BIT,
    checkpoints: Optional[List[int]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = TRACE_CHUNK,
    executor: Optional[str] = None,
    seed: int = 0,
    preprocess: Optional[ResolvedPreprocess] = None,
    policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    health: Optional[CampaignHealth] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: bool = False,
) -> FullKeyResult:
    """Full 16-byte key recovery over physically generated traces.

    The physical counterpart of :func:`sharded_full_key`: every trace
    is simulated end to end and all four last-round columns are read
    from the *same* generated chunk, so one waveform pass feeds all 16
    per-byte CPAs.  With ``preprocess`` set, each chunk is aligned /
    cropped / resampled shard-locally and every column reads its
    resolved POI set instead of the single nominal cycle sample.

    Sharding, checkpointing and fault tolerance mirror
    :func:`sharded_full_key`; results are bit-identical at any worker
    count because all chunk streams are keyed on global indices.
    """
    if num_traces < 2:
        raise ValueError("need at least 2 traces")
    if mask is not None:
        mask = np.asarray(mask)
    plaintexts = random_plaintexts(
        num_traces, seed=derive_seed(seed, "e2e-pt")
    )
    # Ciphertexts for the hypothesis stage come from a dedicated
    # encryption-only pass — the waveform chunks stay worker-side.
    ciphertexts = generator._batched_cipher().encrypt(plaintexts)
    aligned_indices = generator.last_round_sample_indices()
    column_samples = {
        column: (
            np.array([int(aligned_indices[column])], dtype=np.int64)
            if preprocess is None
            else preprocess.samples_for_column(column)
        )
        for column in range(4)
    }
    shards = plan_shards(num_traces, max_workers, chunk_size)
    params = {
        "seed": int(seed),
        "sensor": sensor.name,
        "last_round_key": generator.cipher.last_round_key.hex(),
        "num_traces": int(num_traces),
        "mask": None if mask is None else np.asarray(mask).tolist(),
        "target_bit": int(target_bit),
        "chunk_size": int(chunk_size),
        "sample_indices": [int(i) for i in aligned_indices],
    }
    params.update(_acquisition_manifest_params(generator, preprocess))
    manifest = CampaignManifest(
        kind="physical-fullkey",
        params=params,
        shard_plan=tuple((s.start, s.end) for s in shards),
        checkpoints=tuple(
            int(p) for p in (checkpoints if checkpoints else ())
        ),
    )

    blocks: List[np.ndarray] = []
    completed = 0
    if resume and checkpoint_path is not None and os.path.exists(
        checkpoint_path
    ):
        stored = load_checkpoint(checkpoint_path)
        verify_manifest(checkpoint_path, stored.manifest, manifest)
        completed = stored.completed_shards
        if completed:
            blocks.append(
                np.asarray(
                    stored.arrays["leakage_prefix"], dtype=np.float64
                )
            )

    robust = (
        policy is not None
        or fault_plan is not None
        or health is not None
        or checkpoint_path is not None
    )
    group = len(shards)
    if checkpoint_path is not None:
        group = max(1, checkpoint_every or max_workers or default_workers())
    with ArrayFanout(
        heavy={
            "generator": generator,
            "sensor": sensor,
            "chunk_size": chunk_size,
            "seed": seed,
            "mask": mask,
            "preprocess": preprocess,
            "column_samples": column_samples,
        },
        arrays={"plaintexts": plaintexts},
        executor=executor,
        workers=max_workers or default_workers(),
        num_tasks=len(shards),
    ) as fanout:
        tasks = [
            {"ctx": fanout.context_id, "shard": shard} for shard in shards
        ]
        while completed < len(tasks):
            stop = min(completed + group, len(tasks))
            kwargs: Dict[str, object] = {}
            if robust:
                kwargs = dict(
                    policy=policy,
                    fault_plan=fault_plan,
                    sites=[shard.site for shard in shards[completed:stop]],
                    health=health,
                    validate=_validate_column_block,
                )
            blocks.extend(
                map_ordered(
                    _physical_column_shard_task,
                    tasks[completed:stop],
                    max_workers=max_workers,
                    executor=executor,
                    **fanout.map_kwargs,
                    **kwargs,
                )
            )
            completed = stop
            if checkpoint_path is not None:
                save_checkpoint(
                    checkpoint_path,
                    CampaignCheckpoint(
                        manifest=manifest,
                        completed_shards=completed,
                        arrays={"leakage_prefix": np.vstack(blocks)},
                    ),
                )
    leakage = np.vstack(blocks)
    return recover_last_round_key(
        leakage,
        ciphertexts,
        target_bit=target_bit,
        correct_key=generator.cipher.last_round_key,
        checkpoints=checkpoints,
        max_workers=max_workers,
        executor=executor,
        policy=policy,
        health=health,
    )


def _column_shard_task(task: Dict[str, object]) -> np.ndarray:
    """One shard's column-resolved leakage collection, ``(num, 4)``.

    Returns the block instead of writing into a shared array so the
    payload round-trips through a process pool unchanged.
    """
    state = fanout_state(task["ctx"])
    campaign: AttackCampaign = state.heavy["campaign"]
    shard: Shard = task["shard"]
    voltages = state.array("voltages")
    mask: np.ndarray = state.heavy["mask"]
    chunk_size: int = state.heavy["chunk_size"]

    leakage = np.empty((shard.num_traces, 4), dtype=np.float64)
    for column in range(4):
        for start in range(shard.start, shard.end, chunk_size):
            end = min(start + chunk_size, shard.end)
            local = slice(start - shard.start, end - shard.start)
            leakage[local, column] = campaign.column_leakage_block(
                voltages[start:end, column], start, column, mask
            )
    return poison_leakage(leakage)


def sharded_full_key(
    campaign: AttackCampaign,
    num_traces: int,
    target_bit: int = DEFAULT_TARGET_BIT,
    checkpoints: Optional[List[int]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = TRACE_CHUNK,
    executor: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    health: Optional[CampaignHealth] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: bool = False,
) -> FullKeyResult:
    """Parallel drop-in for :meth:`AttackCampaign.attack_full_key`.

    Column-resolved trace collection is sharded across workers (chunk
    seeds keyed on the global ``(column, start)`` grid, identical to
    the serial collector), then the 16 per-byte CPAs run on the same
    backend.  With ``checkpoint_path`` set, the collected leakage
    prefix becomes durable after every ``checkpoint_every`` shards, so
    a killed collection resumes without regenerating completed shards;
    the per-byte CPA stage is cheap and always recomputed.
    """
    if num_traces < 2:
        raise ValueError("need at least 2 traces")
    mask, _ = campaign.resolve_reduction(REDUCTION_HW)
    ciphertexts = random_ciphertexts(
        num_traces, seed=derive_seed(campaign.seed, "campaign-ct")
    )
    voltages = campaign.leakage.column_voltages(
        ciphertexts,
        campaign.cipher.last_round_key,
        seed=derive_seed(campaign.seed, "campaign-noise"),
    )
    shards = plan_shards(num_traces, max_workers, chunk_size)
    manifest = CampaignManifest(
        kind="fullkey",
        params={
            "campaign_seed": campaign.seed,
            "sensor": campaign.sensor.name,
            "last_round_key": campaign.cipher.last_round_key.hex(),
            "num_traces": int(num_traces),
            "target_bit": int(target_bit),
            "chunk_size": int(chunk_size),
        },
        shard_plan=tuple((s.start, s.end) for s in shards),
        checkpoints=tuple(
            int(p) for p in (checkpoints if checkpoints else ())
        ),
    )

    blocks: List[np.ndarray] = []
    completed = 0
    if resume and checkpoint_path is not None and os.path.exists(
        checkpoint_path
    ):
        stored = load_checkpoint(checkpoint_path)
        verify_manifest(checkpoint_path, stored.manifest, manifest)
        completed = stored.completed_shards
        if completed:
            blocks.append(
                np.asarray(
                    stored.arrays["leakage_prefix"], dtype=np.float64
                )
            )

    robust = (
        policy is not None
        or fault_plan is not None
        or health is not None
        or checkpoint_path is not None
    )
    group = len(shards)
    if checkpoint_path is not None:
        # Default group = worker count, so durability costs no
        # parallelism (a group is one map_ordered call).
        group = max(1, checkpoint_every or max_workers or default_workers())
    with ArrayFanout(
        heavy={
            "campaign": campaign,
            "mask": mask,
            "chunk_size": chunk_size,
        },
        arrays={"voltages": voltages},
        executor=executor,
        workers=max_workers or default_workers(),
        num_tasks=len(shards),
    ) as fanout:
        tasks = [
            {"ctx": fanout.context_id, "shard": shard} for shard in shards
        ]
        while completed < len(tasks):
            stop = min(completed + group, len(tasks))
            kwargs: Dict[str, object] = {}
            if robust:
                kwargs = dict(
                    policy=policy,
                    fault_plan=fault_plan,
                    sites=[shard.site for shard in shards[completed:stop]],
                    health=health,
                    validate=_validate_column_block,
                )
            blocks.extend(
                map_ordered(
                    _column_shard_task,
                    tasks[completed:stop],
                    max_workers=max_workers,
                    executor=executor,
                    **fanout.map_kwargs,
                    **kwargs,
                )
            )
            completed = stop
            if checkpoint_path is not None:
                save_checkpoint(
                    checkpoint_path,
                    CampaignCheckpoint(
                        manifest=manifest,
                        completed_shards=completed,
                        arrays={"leakage_prefix": np.vstack(blocks)},
                    ),
                )
    leakage = np.vstack(blocks)
    return recover_last_round_key(
        leakage,
        ciphertexts,
        target_bit=target_bit,
        correct_key=campaign.cipher.last_round_key,
        checkpoints=checkpoints,
        max_workers=max_workers,
        executor=executor,
        policy=policy,
        health=health,
    )

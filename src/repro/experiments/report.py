"""Terminal reporting helpers for experiment drivers.

Text-mode equivalents of the paper's plots: a unicode sparkline for
time series (Figs. 5/6 waveforms, correlation progress) and a compact
table formatter for result rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a series as a unicode sparkline, downsampled to ``width``.

    >>> sparkline([0, 1, 2, 3], width=4)
    '▁▃▆█'
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:])]
        )
    low, high = float(arr.min()), float(arr.max())
    if high - low < 1e-12:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - low) / (high - low) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def format_table(rows: List[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None) -> str:
    """Format dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in cells
    )
    return "\n".join([header, rule, body])


def describe_mtd(mtd: Optional[int]) -> str:
    """Human phrasing of a measurements-to-disclosure number."""
    if mtd is None:
        return "not disclosed"
    if mtd < 1000:
        return "~%d traces" % mtd
    return "~%dk traces" % round(mtd / 1000)

"""Batch experiment runner and markdown report generation.

``run_all_figures`` executes every evaluation figure at a chosen trace
budget and returns structured records; ``render_report`` turns them
into the paper-vs-measured markdown table used in EXPERIMENTS.md and by
the ``repro report`` CLI command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.config import PAPER_EXPECTED, ExperimentConfig
from repro.experiments.cpa_experiments import CPA_FIGURES
from repro.experiments.preliminary import (
    fig03_04_floorplan,
    fig05_raw_toggle,
    fig06_tdc_vs_benign,
    fig07_15_census,
    fig08_16_variance,
)
from repro.experiments.report import describe_mtd
from repro.experiments.setup import ExperimentSetup


@dataclass
class FigureRecord:
    """One figure's outcome in report form.

    Attributes:
        figure: figure id (``"fig07"``...).
        paper: what the paper reports.
        measured: one-line summary of our measurement.
        ok: whether the qualitative result matched.
    """

    figure: str
    paper: str
    measured: str
    ok: bool


def _run_preliminary(setup: ExperimentSetup) -> List[FigureRecord]:
    records: List[FigureRecord] = []

    floorplan = fig03_04_floorplan(setup, "alu")
    records.append(
        FigureRecord(
            "fig03",
            PAPER_EXPECTED["fig03"],
            "%d sensitive endpoint sites scattered over the region"
            % floorplan["sensitive_sites"],
            floorplan["sensitive_sites"] > 20,
        )
    )
    floorplan_c = fig03_04_floorplan(setup, "c6288x2")
    records.append(
        FigureRecord(
            "fig04",
            PAPER_EXPECTED["fig04"],
            "%d sensitive endpoint sites (2 instances)"
            % floorplan_c["sensitive_sites"],
            floorplan_c["sensitive_sites"] > 10,
        )
    )

    raw = fig05_raw_toggle(setup, "alu")
    records.append(
        FigureRecord(
            "fig05",
            PAPER_EXPECTED["fig05"],
            "%d of 192 endpoints toggling after RO enable (%d before)"
            % (raw["toggling_after_enable"], raw["toggling_before_enable"]),
            raw["toggling_after_enable"]
            > raw["toggling_before_enable"],
        )
    )

    comparison = fig06_tdc_vs_benign(setup, "alu")
    records.append(
        FigureRecord(
            "fig06",
            PAPER_EXPECTED["fig06"],
            "TDC %.0f -> %.0f droop, overshoot %.0f; sensor corr %.2f"
            % (
                comparison["tdc_idle"],
                comparison["tdc_droop_min"],
                comparison["tdc_overshoot_max"],
                comparison["correlation"],
            ),
            comparison["correlation"] > 0.7,
        )
    )

    alu_census = fig07_15_census(setup, "alu")
    records.append(
        FigureRecord(
            "fig07",
            PAPER_EXPECTED["fig07"],
            "%(ro_sensitive)d RO / %(aes_sensitive)d AES "
            "(%(aes_subset_of_ro)d subset) / %(unaffected)d silent"
            % alu_census,
            65 <= alu_census["ro_sensitive"] <= 95,
        )
    )

    alu_variance = fig08_16_variance(setup, "alu")
    records.append(
        FigureRecord(
            "fig08",
            PAPER_EXPECTED["fig08"],
            "best endpoints of this run: %d, %d"
            % (alu_variance["best_bit"], alu_variance["second_bit"]),
            True,
        )
    )

    raw_c = fig05_raw_toggle(setup, "c6288x2")
    records.append(
        FigureRecord(
            "fig14",
            PAPER_EXPECTED["fig14"],
            "%d of 64 endpoints toggling after RO enable"
            % raw_c["toggling_after_enable"],
            raw_c["toggling_after_enable"] >= 35,
        )
    )

    c_census = fig07_15_census(setup, "c6288x2")
    records.append(
        FigureRecord(
            "fig15",
            PAPER_EXPECTED["fig15"],
            "%(ro_sensitive)d RO / %(aes_sensitive)d AES "
            "(%(aes_subset_of_ro)d subset) / %(unaffected)d silent"
            % c_census,
            40 <= c_census["ro_sensitive"] <= 58,
        )
    )

    c_variance = fig08_16_variance(setup, "c6288x2")
    records.append(
        FigureRecord(
            "fig16",
            PAPER_EXPECTED["fig16"],
            "best endpoint of this run: %d" % c_variance["best_bit"],
            True,
        )
    )
    return records


def _run_cpa_figures(setup: ExperimentSetup) -> List[FigureRecord]:
    records: List[FigureRecord] = []
    for figure in sorted(CPA_FIGURES):
        outcome = CPA_FIGURES[figure](setup)
        measured = "%s%s" % (
            describe_mtd(outcome.mtd),
            ""
            if outcome.sensor_bit is None
            else " (endpoint %d)" % outcome.sensor_bit,
        )
        records.append(
            FigureRecord(
                figure,
                PAPER_EXPECTED[figure],
                measured,
                outcome.disclosed,
            )
        )
    return records


def run_all_figures(
    config: Optional[ExperimentConfig] = None,
    include_cpa: bool = True,
) -> List[FigureRecord]:
    """Run every evaluation figure and collect report records.

    Args:
        config: experiment configuration (paper scale by default).
        include_cpa: skip the expensive CPA campaigns when False.
    """
    setup = ExperimentSetup(config or ExperimentConfig())
    records = _run_preliminary(setup)
    if include_cpa:
        records.extend(_run_cpa_figures(setup))
    return sorted(records, key=lambda record: record.figure)


def render_report(records: List[FigureRecord]) -> str:
    """Render records as a markdown paper-vs-measured table."""
    lines = [
        "| Figure | Paper | Measured | OK |",
        "|---|---|---|---|",
    ]
    for record in records:
        lines.append(
            "| %s | %s | %s | %s |"
            % (
                record.figure,
                record.paper,
                record.measured,
                "yes" if record.ok else "NO",
            )
        )
    passed = sum(record.ok for record in records)
    lines.append("")
    lines.append(
        "%d of %d figures reproduce the paper's qualitative result."
        % (passed, len(records))
    )
    return "\n".join(lines)

"""Batch experiment runner and markdown report generation.

``run_all_figures`` executes every evaluation figure at a chosen trace
budget and returns structured records; ``render_report`` turns them
into the paper-vs-measured markdown table used in EXPERIMENTS.md and by
the ``repro report`` CLI command.

Execution is figure-granular: each figure is an independent
``(figure_id, thunk)`` pair, so a ``checkpoint_path`` can make the
multi-hour report crash-safe — after every completed figure the
records-so-far are written atomically to a JSON checkpoint stamped with
a configuration hash, and ``resume=True`` skips figures that are
already recorded (rejecting a checkpoint produced under a different
configuration).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.preprocess.spec import MisalignmentSpec, PreprocessSpec

from repro.experiments.checkpoint import CheckpointError
from repro.experiments.config import PAPER_EXPECTED, ExperimentConfig
from repro.experiments.cpa_experiments import CPA_FIGURES
from repro.experiments.preliminary import (
    fig03_04_floorplan,
    fig05_raw_toggle,
    fig06_tdc_vs_benign,
    fig07_15_census,
    fig08_16_variance,
)
from repro.experiments.report import describe_mtd
from repro.experiments.setup import ExperimentSetup
from repro.util.fileio import atomic_write

#: Bumped whenever the report-checkpoint layout changes incompatibly.
REPORT_CHECKPOINT_VERSION = 1


@dataclass
class FigureRecord:
    """One figure's outcome in report form.

    Attributes:
        figure: figure id (``"fig07"``...).
        paper: what the paper reports.
        measured: one-line summary of our measurement.
        ok: whether the qualitative result matched.
    """

    figure: str
    paper: str
    measured: str
    ok: bool


def _fig03(setup: ExperimentSetup) -> FigureRecord:
    floorplan = fig03_04_floorplan(setup, "alu")
    return FigureRecord(
        "fig03",
        PAPER_EXPECTED["fig03"],
        "%d sensitive endpoint sites scattered over the region"
        % floorplan["sensitive_sites"],
        floorplan["sensitive_sites"] > 20,
    )


def _fig04(setup: ExperimentSetup) -> FigureRecord:
    floorplan = fig03_04_floorplan(setup, "c6288x2")
    return FigureRecord(
        "fig04",
        PAPER_EXPECTED["fig04"],
        "%d sensitive endpoint sites (2 instances)"
        % floorplan["sensitive_sites"],
        floorplan["sensitive_sites"] > 10,
    )


def _fig05(setup: ExperimentSetup) -> FigureRecord:
    raw = fig05_raw_toggle(setup, "alu")
    return FigureRecord(
        "fig05",
        PAPER_EXPECTED["fig05"],
        "%d of 192 endpoints toggling after RO enable (%d before)"
        % (raw["toggling_after_enable"], raw["toggling_before_enable"]),
        raw["toggling_after_enable"] > raw["toggling_before_enable"],
    )


def _fig06(setup: ExperimentSetup) -> FigureRecord:
    comparison = fig06_tdc_vs_benign(setup, "alu")
    return FigureRecord(
        "fig06",
        PAPER_EXPECTED["fig06"],
        "TDC %.0f -> %.0f droop, overshoot %.0f; sensor corr %.2f"
        % (
            comparison["tdc_idle"],
            comparison["tdc_droop_min"],
            comparison["tdc_overshoot_max"],
            comparison["correlation"],
        ),
        comparison["correlation"] > 0.7,
    )


def _fig07(setup: ExperimentSetup) -> FigureRecord:
    census = fig07_15_census(setup, "alu")
    return FigureRecord(
        "fig07",
        PAPER_EXPECTED["fig07"],
        "%(ro_sensitive)d RO / %(aes_sensitive)d AES "
        "(%(aes_subset_of_ro)d subset) / %(unaffected)d silent"
        % census,
        65 <= census["ro_sensitive"] <= 95,
    )


def _fig08(setup: ExperimentSetup) -> FigureRecord:
    variance = fig08_16_variance(setup, "alu")
    return FigureRecord(
        "fig08",
        PAPER_EXPECTED["fig08"],
        "best endpoints of this run: %d, %d"
        % (variance["best_bit"], variance["second_bit"]),
        True,
    )


def _fig14(setup: ExperimentSetup) -> FigureRecord:
    raw = fig05_raw_toggle(setup, "c6288x2")
    return FigureRecord(
        "fig14",
        PAPER_EXPECTED["fig14"],
        "%d of 64 endpoints toggling after RO enable"
        % raw["toggling_after_enable"],
        raw["toggling_after_enable"] >= 35,
    )


def _fig15(setup: ExperimentSetup) -> FigureRecord:
    census = fig07_15_census(setup, "c6288x2")
    return FigureRecord(
        "fig15",
        PAPER_EXPECTED["fig15"],
        "%(ro_sensitive)d RO / %(aes_sensitive)d AES "
        "(%(aes_subset_of_ro)d subset) / %(unaffected)d silent"
        % census,
        40 <= census["ro_sensitive"] <= 58,
    )


def _fig16(setup: ExperimentSetup) -> FigureRecord:
    variance = fig08_16_variance(setup, "c6288x2")
    return FigureRecord(
        "fig16",
        PAPER_EXPECTED["fig16"],
        "best endpoint of this run: %d" % variance["best_bit"],
        True,
    )


_PRELIMINARY_FIGURES: Dict[
    str, Callable[[ExperimentSetup], FigureRecord]
] = {
    "fig03": _fig03,
    "fig04": _fig04,
    "fig05": _fig05,
    "fig06": _fig06,
    "fig07": _fig07,
    "fig08": _fig08,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
}


def _cpa_figure_thunk(
    figure: str,
) -> Callable[[ExperimentSetup], FigureRecord]:
    def run(setup: ExperimentSetup) -> FigureRecord:
        outcome = CPA_FIGURES[figure](setup)
        measured = "%s%s" % (
            describe_mtd(outcome.mtd),
            ""
            if outcome.sensor_bit is None
            else " (endpoint %d)" % outcome.sensor_bit,
        )
        return FigureRecord(
            figure, PAPER_EXPECTED[figure], measured, outcome.disclosed
        )

    return run


def _acquisition_figure_thunk(
    jitter: Optional["MisalignmentSpec"],
    preprocess: Optional["PreprocessSpec"],
) -> Callable[[ExperimentSetup], FigureRecord]:
    """The acquisition-realism figure: jitter -> align -> CPA.

    Runs the end-to-end physical campaign twice at the requested
    misalignment severity — once raw, once through the preprocessing
    chain — and reports whether preprocessing restores key recovery.
    """

    def run(setup: ExperimentSetup) -> FigureRecord:
        from repro.attacks.full_key import (  # noqa: PLC0415
            column_of_key_byte,
        )
        from repro.core.tracegen import (  # noqa: PLC0415
            PhysicalTraceGenerator,
        )
        from repro.experiments.parallel import (  # noqa: PLC0415
            sharded_physical_attack,
        )
        from repro.preprocess.pipeline import (  # noqa: PLC0415
            resolve_preprocess,
        )
        from repro.util.rng import derive_seed  # noqa: PLC0415

        # Tail margin around the encryption window so trigger shifts
        # displace content instead of clipping it at the trace edge.
        generator = PhysicalTraceGenerator(
            setup.cipher,
            start_sample=12,
            num_samples=88,
            misalignment=jitter,
        )
        sensor = setup.campaign("alu").sensor
        seed = derive_seed(setup.config.seed, "acquisition-figure")
        traces = min(int(setup.config.num_traces), 40_000)
        column = column_of_key_byte(setup.config.target_byte)
        resolved = resolve_preprocess(
            preprocess,
            generator,
            seed,
            columns=(column,),
            target_byte=setup.config.target_byte,
        )
        raw = sharded_physical_attack(
            generator,
            sensor,
            traces,
            target_byte=setup.config.target_byte,
            max_workers=setup.config.max_workers,
            executor=setup.config.executor,
            seed=seed,
        )
        processed = (
            raw
            if resolved is None
            else sharded_physical_attack(
                generator,
                sensor,
                traces,
                target_byte=setup.config.target_byte,
                max_workers=setup.config.max_workers,
                executor=setup.config.executor,
                seed=seed,
                preprocess=resolved,
            )
        )
        jitter_label = "none" if jitter is None else jitter.to_string()
        pre_label = (
            "none" if preprocess is None else preprocess.to_string()
        )
        return FigureRecord(
            "acq01",
            "realistic acquisition: preprocessing restores the CPA "
            "leakage that trigger misalignment destroys",
            "jitter=%s: raw rank %d, preprocess=%s rank %d at %d traces"
            % (
                jitter_label,
                raw.key_ranks()[-1],
                pre_label,
                processed.key_ranks()[-1],
                traces,
            ),
            processed.key_ranks()[-1] == 0,
        )

    return run


def figure_plan(
    include_cpa: bool = True,
    jitter: Optional["MisalignmentSpec"] = None,
    preprocess: Optional["PreprocessSpec"] = None,
) -> List[Tuple[str, Callable[[ExperimentSetup], FigureRecord]]]:
    """Every figure as an independent ``(figure_id, thunk)`` pair.

    The plan order is deterministic (figure id); each thunk is a pure
    function of the (cached) :class:`ExperimentSetup`, which is what
    makes figure-granular checkpoint/resume sound.  Passing a jitter
    and/or preprocess spec appends the acquisition-realism figure
    (``acq01``); without them the plan is unchanged.
    """
    plan = dict(_PRELIMINARY_FIGURES)
    if include_cpa:
        for figure in CPA_FIGURES:
            plan[figure] = _cpa_figure_thunk(figure)
    if jitter is not None or preprocess is not None:
        plan["acq01"] = _acquisition_figure_thunk(jitter, preprocess)
    return sorted(plan.items())


def _report_config_hash(
    config: ExperimentConfig,
    figures: List[str],
    jitter: Optional["MisalignmentSpec"] = None,
    preprocess: Optional["PreprocessSpec"] = None,
) -> str:
    """Fingerprint of everything that determines the report's records."""
    payload_config = {
        "seed": config.seed,
        "key": config.key.hex(),
        "num_traces": config.num_traces,
        "characterization_samples": (
            config.characterization_samples
        ),
        "target_byte": config.target_byte,
        "target_bit": config.target_bit,
        "overclock_mhz": config.overclock_mhz,
    }
    # Only present when set, so acquisition-free reports keep their
    # pre-existing hashes (and stay resumable across this change).
    if jitter is not None:
        payload_config["jitter"] = jitter.to_string()
    if preprocess is not None:
        payload_config["preprocess"] = preprocess.to_string()
    payload = json.dumps(
        {
            "version": REPORT_CHECKPOINT_VERSION,
            "config": payload_config,
            "figures": figures,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _load_report_checkpoint(
    path: str, config_hash: str
) -> Dict[str, FigureRecord]:
    """Completed records from a report checkpoint, or an error."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        version = int(data["version"])
        if version != REPORT_CHECKPOINT_VERSION:
            raise CheckpointError(
                path,
                "version %d not supported (expected %d)"
                % (version, REPORT_CHECKPOINT_VERSION),
            )
        stored_hash = data["config_hash"]
        records = {
            figure: FigureRecord(
                figure=figure,
                paper=str(record["paper"]),
                measured=str(record["measured"]),
                ok=bool(record["ok"]),
            )
            for figure, record in data["records"].items()
        }
    except CheckpointError:
        raise
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(
            path, "unreadable or corrupt (%s)" % exc
        ) from exc
    if stored_hash != config_hash:
        raise CheckpointError(
            path,
            "configuration hash mismatch — refusing to resume a "
            "different report run",
        )
    return records


def _save_report_checkpoint(
    path: str, config_hash: str, records: Dict[str, FigureRecord]
) -> None:
    payload = json.dumps(
        {
            "version": REPORT_CHECKPOINT_VERSION,
            "config_hash": config_hash,
            "records": {
                figure: {
                    "paper": record.paper,
                    "measured": record.measured,
                    "ok": record.ok,
                }
                for figure, record in sorted(records.items())
            },
        },
        sort_keys=True,
        indent=2,
    )
    atomic_write(
        path, lambda handle: handle.write(payload.encode("utf-8"))
    )


def run_all_figures(
    config: Optional[ExperimentConfig] = None,
    include_cpa: bool = True,
    jitter: Optional["MisalignmentSpec"] = None,
    preprocess: Optional["PreprocessSpec"] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
) -> List[FigureRecord]:
    """Run every evaluation figure and collect report records.

    Args:
        config: experiment configuration (paper scale by default).
        include_cpa: skip the expensive CPA campaigns when False.
        jitter: acquisition misalignment spec; with ``preprocess``,
            adds the acquisition-realism figure (``acq01``).
        preprocess: preprocessing spec for the acquisition figure.
        checkpoint_path: write a JSON checkpoint of the records here
            (atomically) after every completed figure.
        resume: skip figures already recorded in ``checkpoint_path``;
            the stored configuration hash must match this run's.
    """
    config = config or ExperimentConfig()
    setup = ExperimentSetup(config)
    plan = figure_plan(include_cpa, jitter=jitter, preprocess=preprocess)
    config_hash = _report_config_hash(
        config,
        [figure for figure, _ in plan],
        jitter=jitter,
        preprocess=preprocess,
    )
    records: Dict[str, FigureRecord] = {}
    if (
        resume
        and checkpoint_path is not None
        and os.path.exists(checkpoint_path)
    ):
        records = _load_report_checkpoint(checkpoint_path, config_hash)
    for figure, thunk in plan:
        if figure in records:
            continue
        records[figure] = thunk(setup)
        if checkpoint_path is not None:
            _save_report_checkpoint(checkpoint_path, config_hash, records)
    return [record for _, record in sorted(records.items())]


def render_report(records: List[FigureRecord]) -> str:
    """Render records as a markdown paper-vs-measured table."""
    lines = [
        "| Figure | Paper | Measured | OK |",
        "|---|---|---|---|",
    ]
    for record in records:
        lines.append(
            "| %s | %s | %s | %s |"
            % (
                record.figure,
                record.paper,
                record.measured,
                "yes" if record.ok else "NO",
            )
        )
    passed = sum(record.ok for record in records)
    lines.append("")
    lines.append(
        "%d of %d figures reproduce the paper's qualitative result."
        % (passed, len(records))
    )
    return "\n".join(lines)

"""Campaign statistics: MTD spread and success rate over repeated runs.

A single attack run reports one measurements-to-disclosure number; a
responsible evaluation asks how that number varies over independent
campaigns (fresh plaintexts, noise, jitter).  This module repeats an
attack across campaign seeds and aggregates guessing entropy, success
rate, and the MTD distribution — the statistics behind statements like
"revealed after *about* 150k traces".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.aes.aes128 import AES128
from repro.attacks.metrics import guessing_entropy, success_rate
from repro.core.attack import REDUCTION_HW, AttackCampaign
from repro.core.endpoint_sensor import BenignSensor
from repro.util.rng import derive_seed


@dataclass
class CampaignStatistics:
    """Aggregate outcome of repeated attack campaigns.

    Attributes:
        mtds: per-run measurements-to-disclosure (None = not disclosed).
        final_ranks: per-run final rank of the correct key byte.
        num_traces: trace budget of each run.
    """

    mtds: List[Optional[int]]
    final_ranks: List[int]
    num_traces: int

    @property
    def num_runs(self) -> int:
        return len(self.mtds)

    @property
    def success_rate(self) -> float:
        """Fraction of runs ending at rank 0."""
        return success_rate(self.final_ranks)

    @property
    def guessing_entropy(self) -> float:
        """Mean final rank of the correct key byte."""
        return guessing_entropy(self.final_ranks)

    def mtd_quantiles(self) -> Optional[tuple]:
        """(min, median, max) MTD over the disclosing runs."""
        disclosed = [m for m in self.mtds if m is not None]
        if not disclosed:
            return None
        arr = np.asarray(disclosed, dtype=float)
        return (
            int(arr.min()),
            int(np.median(arr)),
            int(arr.max()),
        )

    def summary(self) -> str:
        quantiles = self.mtd_quantiles()
        spread = (
            "MTD min/med/max = %d / %d / %d" % quantiles
            if quantiles
            else "no run disclosed"
        )
        return (
            "%d runs x %d traces: success rate %.0f%%, "
            "guessing entropy %.1f, %s"
            % (
                self.num_runs,
                self.num_traces,
                100 * self.success_rate,
                self.guessing_entropy,
                spread,
            )
        )


def repeat_attack(
    circuit: str,
    key: bytes,
    num_traces: int,
    num_runs: int = 5,
    reduction: str = REDUCTION_HW,
    root_seed: int = 0,
) -> CampaignStatistics:
    """Run the same attack over ``num_runs`` independent campaigns.

    The sensor (one implementation run) is shared — the hardware does
    not change between campaigns — while plaintexts, victim noise and
    capture jitter are redrawn per run via derived seeds.

    Args:
        circuit: benign-circuit registry name.
        key: victim AES-128 key.
        num_traces: traces per campaign.
        num_runs: independent campaigns.
        reduction: sensor-word reduction mode.
        root_seed: root of the per-run seed derivation.
    """
    if num_runs < 1:
        raise ValueError("need at least one run")
    sensor = BenignSensor.from_name(
        circuit, implementation_seed=root_seed
    )
    cipher = AES128(key)
    mtds: List[Optional[int]] = []
    ranks: List[int] = []
    for run in range(num_runs):
        campaign = AttackCampaign(
            sensor, cipher, seed=derive_seed(root_seed, "repeat", run)
        )
        campaign.characterize()
        result = campaign.attack(num_traces, reduction=reduction)
        mtds.append(result.measurements_to_disclosure())
        ranks.append(int(result.key_ranks()[-1]))
    return CampaignStatistics(
        mtds=mtds, final_ranks=ranks, num_traces=num_traces
    )

"""Crash-safe campaign checkpoints.

A multi-hour sharded campaign must survive the driver process dying —
OOM, preemption, a Ctrl-C — without losing hours of trace generation.
The campaign drivers in :mod:`repro.experiments.parallel` periodically
serialize their durable state through this module:

* a :class:`CampaignManifest` — everything that determines the
  campaign's output (kind, seeds and parameters, the shard plan, the
  checkpoint grid), fingerprinted by a SHA-256 ``config_hash`` so a
  resume against a *different* configuration is rejected instead of
  silently producing garbage;
* a :class:`CampaignCheckpoint` — the manifest plus the number of
  completed shards and the driver's merged numeric state (running
  :class:`~repro.attacks.cpa.StreamingCPA` sums, emitted correlation
  rows, collected leakage prefixes).

Files are written atomically — serialized to a temporary file in the
destination directory, fsynced, then ``os.replace``d over the target —
so a crash mid-write can never leave a truncated checkpoint behind;
the previous durable state simply survives.  Because shard merges are
order-independent and every chunk's randomness is keyed on global
trace indices, a campaign resumed from any checkpoint reproduces the
uninterrupted result bit for bit.

The serialized payload is a single ``.npz``: reserved double-
underscore keys carry the manifest and progress counter, every other
key is a caller-owned numpy array (``np.savez`` round-trips float64
payloads exactly, which is what makes resume bit-identical).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.errors import ReproError
from repro.util.fileio import atomic_write

__all__ = [
    "CHECKPOINT_VERSION",
    "CampaignCheckpoint",
    "CampaignManifest",
    "CheckpointError",
    "atomic_write",
    "load_checkpoint",
    "save_checkpoint",
]

#: Bumped whenever the on-disk layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: Reserved keys inside the ``.npz`` payload.
_KEY_MANIFEST = "__manifest__"
_KEY_COMPLETED = "__completed_shards__"
_KEY_VERSION = "__version__"


class CheckpointError(ReproError):
    """A checkpoint file is unreadable, corrupt, or mismatched."""

    def __init__(self, path: str, reason: str):
        super().__init__("checkpoint %s: %s" % (path, reason))
        self.path = path
        self.reason = reason


@dataclass(frozen=True)
class CampaignManifest:
    """Everything that determines a campaign's output.

    Attributes:
        kind: campaign flavor (``"attack"``, ``"physical"``,
            ``"fullkey"``, ``"report"``).
        params: JSON-serializable campaign parameters (seeds, trace
            budget, targets, chunk size, ...).
        shard_plan: the ``(start, end)`` trace range of every shard,
            in execution order.
        checkpoints: the correlation-evaluation grid.
    """

    kind: str
    params: Dict[str, object] = field(default_factory=dict)
    shard_plan: Tuple[Tuple[int, int], ...] = ()
    checkpoints: Tuple[int, ...] = ()

    def to_json(self) -> str:
        """Canonical JSON form (stable key order → stable hash)."""
        return json.dumps(
            {
                "version": CHECKPOINT_VERSION,
                "kind": self.kind,
                "params": self.params,
                "shard_plan": [list(pair) for pair in self.shard_plan],
                "checkpoints": list(self.checkpoints),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "CampaignManifest":
        data = json.loads(payload)
        return cls(
            kind=data["kind"],
            params=data["params"],
            shard_plan=tuple(
                (int(a), int(b)) for a, b in data["shard_plan"]
            ),
            checkpoints=tuple(int(p) for p in data["checkpoints"]),
        )

    @property
    def config_hash(self) -> str:
        """SHA-256 fingerprint of the canonical manifest."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


@dataclass
class CampaignCheckpoint:
    """One durable snapshot of campaign progress.

    Attributes:
        manifest: the campaign configuration fingerprint.
        completed_shards: shards fully merged into ``arrays`` — always
            a prefix of ``manifest.shard_plan``, because the drivers
            merge in trace order.
        arrays: driver-owned numeric state (running accumulator sums,
            emitted correlation rows, leakage prefixes...).
    """

    manifest: CampaignManifest
    completed_shards: int
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key in self.arrays:
            if key.startswith("__"):
                raise ValueError(
                    "array key %r collides with reserved checkpoint "
                    "keys" % key
                )


def save_checkpoint(path: str, checkpoint: CampaignCheckpoint) -> None:
    """Atomically persist a checkpoint (write-temp-then-rename)."""
    payload: Dict[str, np.ndarray] = {
        _KEY_MANIFEST: np.frombuffer(
            checkpoint.manifest.to_json().encode("utf-8"), dtype=np.uint8
        ),
        _KEY_COMPLETED: np.int64(checkpoint.completed_shards),
        _KEY_VERSION: np.int64(CHECKPOINT_VERSION),
    }
    payload.update(checkpoint.arrays)
    atomic_write(path, lambda handle: np.savez(handle, **payload))


def load_checkpoint(path: str) -> CampaignCheckpoint:
    """Read a checkpoint, raising :class:`CheckpointError` on damage."""
    if not os.path.exists(path):
        raise CheckpointError(path, "no such file")
    try:
        with np.load(path) as data:
            version = int(data[_KEY_VERSION])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    path,
                    "version %d not supported (expected %d)"
                    % (version, CHECKPOINT_VERSION),
                )
            manifest = CampaignManifest.from_json(
                bytes(data[_KEY_MANIFEST]).decode("utf-8")
            )
            completed = int(data[_KEY_COMPLETED])
            arrays = {
                key: data[key]
                for key in data.files
                if not key.startswith("__")
            }
    except CheckpointError:
        raise
    except (
        zipfile.BadZipFile,
        KeyError,
        ValueError,
        EOFError,
        OSError,
        json.JSONDecodeError,
    ) as exc:
        raise CheckpointError(
            path, "unreadable or corrupt (%s)" % exc
        ) from exc
    if not 0 <= completed <= len(manifest.shard_plan):
        raise CheckpointError(
            path,
            "completed shard count %d outside the %d-shard plan"
            % (completed, len(manifest.shard_plan)),
        )
    return CampaignCheckpoint(
        manifest=manifest, completed_shards=completed, arrays=arrays
    )


def verify_manifest(
    path: str,
    stored: CampaignManifest,
    expected: CampaignManifest,
) -> None:
    """Reject a resume whose configuration differs from the checkpoint.

    Compares the SHA-256 config hashes and names the first differing
    field in the error to make the mismatch actionable.
    """
    if stored.config_hash == expected.config_hash:
        return
    detail = "configuration hash mismatch"
    if stored.kind != expected.kind:
        detail = "campaign kind %r != %r" % (stored.kind, expected.kind)
    else:
        for key in sorted(set(stored.params) | set(expected.params)):
            if stored.params.get(key) != expected.params.get(key):
                detail = "parameter %r: checkpoint has %r, run has %r" % (
                    key,
                    stored.params.get(key),
                    expected.params.get(key),
                )
                break
        else:
            if stored.shard_plan != expected.shard_plan:
                detail = "shard plan differs (%d vs %d shards)" % (
                    len(stored.shard_plan),
                    len(expected.shard_plan),
                )
            elif stored.checkpoints != expected.checkpoints:
                detail = "checkpoint grid differs"
    raise CheckpointError(
        path,
        "%s — refusing to resume a different campaign" % detail,
    )


def checkpoint_row_count(
    checkpoints: Sequence[int], shard_plan: Sequence[Tuple[int, int]],
    completed_shards: int,
) -> int:
    """Correlation rows emitted after ``completed_shards`` shards.

    Rows are emitted whenever a merge boundary lands on the checkpoint
    grid; with whole-shard groups that is every grid point at or below
    the completed trace prefix.
    """
    if completed_shards == 0:
        return 0
    frontier = shard_plan[completed_shards - 1][1]
    return sum(1 for point in checkpoints if point <= frontier)


def split_rows(rows_array: np.ndarray) -> List[np.ndarray]:
    """Checkpoint rows array back into the driver's list-of-rows form."""
    return [np.array(row, copy=True) for row in rows_array]

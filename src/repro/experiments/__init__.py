"""Per-figure experiment drivers.

:class:`ExperimentSetup` assembles (and caches) the Fig. 2 system for
one :class:`ExperimentConfig`; the ``fig*`` functions in
:mod:`preliminary` and :mod:`cpa_experiments` regenerate each figure of
the paper's evaluation.  ``PAPER_EXPECTED`` records what the paper
reports for each.
"""

from repro.experiments.config import (
    DEFAULT_KEY,
    PAPER_EXPECTED,
    ExperimentConfig,
)
from repro.experiments.cpa_experiments import (
    CPA_FIGURES,
    CPAExperimentOutcome,
    fig09_cpa_tdc,
    fig10_cpa_alu,
    fig11_cpa_tdc_single,
    fig12_cpa_alu_best_bit,
    fig13_cpa_alu_alternate_bit,
    fig17_cpa_c6288,
    fig18_cpa_c6288_best_bit,
)
from repro.experiments.checkpoint import (
    CampaignCheckpoint,
    CampaignManifest,
    CheckpointError,
    atomic_write,
    load_checkpoint,
    save_checkpoint,
)
from repro.experiments.parallel import (
    Shard,
    plan_shards,
    sharded_attack,
    sharded_full_key,
    sharded_physical_attack,
    sharded_physical_full_key,
)
from repro.experiments.preliminary import (
    fig03_04_floorplan,
    fig05_raw_toggle,
    fig06_tdc_vs_benign,
    fig07_15_census,
    fig08_16_variance,
)
from repro.experiments.report import describe_mtd, format_table, sparkline
from repro.experiments.setup import ExperimentSetup

__all__ = [
    "CPA_FIGURES",
    "CPAExperimentOutcome",
    "CampaignCheckpoint",
    "CampaignManifest",
    "CheckpointError",
    "DEFAULT_KEY",
    "atomic_write",
    "load_checkpoint",
    "save_checkpoint",
    "ExperimentConfig",
    "ExperimentSetup",
    "PAPER_EXPECTED",
    "Shard",
    "plan_shards",
    "sharded_attack",
    "sharded_full_key",
    "sharded_physical_attack",
    "sharded_physical_full_key",
    "describe_mtd",
    "fig03_04_floorplan",
    "fig05_raw_toggle",
    "fig06_tdc_vs_benign",
    "fig07_15_census",
    "fig08_16_variance",
    "fig09_cpa_tdc",
    "fig10_cpa_alu",
    "fig11_cpa_tdc_single",
    "fig12_cpa_alu_best_bit",
    "fig13_cpa_alu_alternate_bit",
    "fig17_cpa_c6288",
    "fig18_cpa_c6288_best_bit",
    "format_table",
    "sparkline",
]

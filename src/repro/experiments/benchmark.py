"""Performance harness for the sampling, trace-generation and campaign
fast paths.

:func:`run_sampling_benchmark` times the four sensor-sampling
configurations (bank vs reference loop, with and without per-register
jitter) and one end-to-end CPA campaign (serial vs sharded), and
returns a JSON-serializable record; :func:`write_sampling_benchmark`
persists it (``BENCH_sampling.json`` at the repo root is the tracked
snapshot, regenerated via ``repro bench``).

:func:`run_e2e_benchmark` covers the stages *feeding* the sampler: the
batched AES datapath vs the per-trace cipher loop, the IIR-form PDN
integrator vs the pure-Python recurrence, the combined physical trace
generator, and a full physical CPA campaign — fast kernels on a
multi-worker process pool against the per-trace reference path run
serially.  Every comparison asserts bit-identical outputs (states,
waveforms, sampled bits, CPA correlations) before anything is timed;
``BENCH_e2e.json`` is the tracked snapshot
(``repro bench --suite e2e``).

:func:`run_fleet_benchmark` measures distributed campaign dispatch:
an in-process campaign service plus ``repro worker`` subprocesses on
loopback TCP, 1 vs N workers, with the merged result asserted
bit-identical to a direct single-host run before any timing, and the
binary-frame vs base64-JSON payload sizes recorded alongside
(``repro bench --suite fleet`` → ``BENCH_fleet.json``).

:func:`run_chaos_benchmark` is the durability drill for the journaled
control plane: a real ``repro serve`` subprocess is SIGKILLed at a
journaled barrier with two jobs in flight (one leased to remote
``--reconnect`` workers), restarted on the same journal, and both
recovered results are asserted byte-identical to undisturbed runs
before the recovery latency is recorded
(``repro bench --suite chaos`` → ``BENCH_chaos.json``).

Methodology:

* every timed path runs once untimed to warm lazily built tables (the
  bank's interval-word table, the campaign's characterization) so the
  numbers measure steady-state sampling throughput;
* each measurement is the best of ``repeats`` runs (minimum wall
  clock), the standard way to suppress scheduler noise;
* bank and reference paths are asserted bit-identical on every run, so
  a speedup can never come from computing something different.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from repro.attacks.cpa import run_cpa
from repro.attacks.models import single_bit_hypothesis
from repro.core.attack import (
    DEFAULT_TARGET_BYTE,
    REDUCTION_HW,
    AttackCampaign,
)
from repro.core.endpoint_sensor import (
    DEFAULT_JITTER_PS,
    DEFAULT_SHARED_JITTER_PS,
    BenignSensor,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    default_workers,
    plan_chunk_size,
    sharded_attack,
)
from repro.util import kernels
from repro.util.executors import usable_cpu_count
from repro.util.rng import derive_seed, make_rng

from repro.aes.aes128 import AES128


def host_metadata(executor: Optional[str] = None) -> Dict[str, object]:
    """Host provenance embedded in every benchmark record.

    Performance snapshots are only comparable between runs when the
    platform that produced them is known; this block pins the
    interpreter, the numeric stack, the machine, the executor backend,
    and — since the kernel dispatch layer — the resolved kernel backend
    map (``kernel_backends``), the native provider serving it, and the
    numba version.  ``scipy``/``numba`` are optional in the runtime, so
    their versions are recorded as ``None`` when absent rather than
    failing the bench.
    """
    try:
        import scipy  # noqa: PLC0415 — optional dependency probe

        scipy_version: Optional[str] = scipy.__version__
    except ImportError:
        scipy_version = None
    meta = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        # What the campaign can actually use: cgroup/affinity limits
        # make this smaller than cpu_count in containers and CI, and a
        # "parallel speedup" is only meaningful against this number.
        "usable_cpus": usable_cpu_count(),
        "executor": executor if executor is not None else "thread",
    }
    meta.update(kernels.backend_metadata())
    return meta


def warm_kernels() -> None:
    """Run every dispatched kernel once on tiny inputs, pre-timing.

    JIT-compiled backends (numba) pay compilation and the cc backend
    pays a one-time library build on first call; running each op here
    keeps that cost out of every timed repeat.  The warm-up outputs are
    asserted equal to the numpy reference — the same
    assert-before-timing contract the stage comparisons enforce, just
    extended to the warm-up itself.
    """
    rng = make_rng(derive_seed(0, "bench-kernel-warmup"))
    plaintexts = rng.integers(0, 256, size=(4, 16), dtype=np.uint8)
    currents = rng.normal(0.02, 0.005, size=(4, 32))
    leakage = rng.integers(0, 9, size=16).astype(np.float64)
    hypotheses = rng.integers(0, 2, size=(16, 256)).astype(np.int8)

    from repro.aes.batch import BatchedAES128, cycle_activity_and_ciphertexts
    from repro.attacks.cpa import StreamingCPA
    from repro.attacks.models import single_bit_hypothesis
    from repro.pdn.model import PDNModel

    def run_all():
        batched = BatchedAES128(bytes(range(16)))
        states = batched.round_states(plaintexts)
        activity, ciphertexts = cycle_activity_and_ciphertexts(
            batched, plaintexts
        )
        hyp = single_bit_hypothesis(states[:, 11, 0])
        droop = PDNModel().integrate_batch(currents)
        engine = StreamingCPA()
        engine.update(leakage, hypotheses)
        return states, activity, ciphertexts, hyp, droop, engine

    with kernels.use("numpy"):
        reference = run_all()
    warmed = run_all()
    same = all(
        np.array_equal(a, b)
        for a, b in zip(reference[:5], warmed[:5])
    ) and all(
        np.array_equal(a, b)
        for a, b in zip(
            reference[5].state_arrays().values(),
            warmed[5].state_arrays().values(),
        )
    )
    if not same:
        raise AssertionError(
            "kernel warm-up output diverges from the numpy reference "
            "(active backends: %r)" % (kernels.active_backends(),)
        )


def _workers_exceed_cpus(workers: int) -> bool:
    """Whether ``workers`` oversubscribes the usable cores (warns once).

    4 workers pinned to 1 core time-slice one CPU while paying full
    fan-out overhead — that alone can manufacture a sub-1.0 "parallel
    speedup", so the condition is stamped into the record and warned
    about rather than silently distorting the trajectory.
    """
    usable = usable_cpu_count()
    exceed = workers > usable
    if exceed:
        print(
            "bench: warning: %d workers exceed %d usable CPU%s; parallel "
            "timings will understate real multi-core scaling"
            % (workers, usable, "" if usable == 1 else "s"),
            file=sys.stderr,
        )
    return exceed


def _parallel_speedup_fields(
    speedup: float, exceed: bool, prefix: str = "parallel_speedup"
) -> Dict[str, object]:
    """Speedup fields that stay honest on oversubscribed hosts.

    When the measurement oversubscribed the usable cores, the headline
    ``<prefix>_same_kernels`` figure is ``None`` — a sub-1.0 number
    measured by time-slicing one CPU is not a scaling result — and the
    raw ratio moves to ``<prefix>_advisory`` with a note saying why.
    On a host with enough cores the headline field carries the ratio
    and the advisory fields are ``None``.
    """
    if exceed:
        return {
            "%s_same_kernels" % prefix: None,
            "%s_advisory" % prefix: speedup,
            "%s_note" % prefix: (
                "workers exceed usable CPUs; the advisory ratio "
                "time-slices one core and understates real multi-core "
                "scaling"
            ),
        }
    return {
        "%s_same_kernels" % prefix: speedup,
        "%s_advisory" % prefix: None,
        "%s_note" % prefix: None,
    }


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sampling_case(
    calibration,
    voltages: np.ndarray,
    jitter_ps: float,
    shared: Optional[np.ndarray],
    repeats: int,
) -> Dict[str, float]:
    """Time bank vs reference on identical inputs; assert equality."""
    kwargs = dict(jitter_ps=jitter_ps, seed=7, shared_jitter_ps=shared)
    bank_out = calibration.sample_bits(voltages, **kwargs)
    reference_out = calibration.sample_bits_reference(voltages, **kwargs)
    if not np.array_equal(bank_out, reference_out):
        raise AssertionError("bank and reference paths disagree")
    n = voltages.shape[0]
    bank_s = _best_of(
        repeats, lambda: calibration.sample_bits(voltages, **kwargs)
    )
    reference_s = _best_of(
        repeats,
        lambda: calibration.sample_bits_reference(voltages, **kwargs),
    )
    return {
        "bank_s": bank_s,
        "reference_s": reference_s,
        "bank_traces_per_s": n / bank_s,
        "reference_traces_per_s": n / reference_s,
        "speedup": reference_s / bank_s,
    }


def run_sampling_benchmark(
    num_cycles: int = 100_000,
    circuit: str = "alu",
    campaign_traces: int = 100_000,
    repeats: int = 3,
    max_workers: Optional[int] = None,
    seed: int = 1,
) -> Dict[str, object]:
    """Benchmark the sampling kernels and the sharded campaign driver.

    Args:
        num_cycles: voltage samples per sampling measurement (the
            acceptance target is the 100k-cycle ALU campaign).
        circuit: registry circuit to benchmark.
        campaign_traces: traces for the serial-vs-sharded campaign
            comparison.
        repeats: timing repeats (best-of).
        max_workers: sharded-driver worker count (default: machine
            dependent).
        seed: campaign/jitter seed.
    """
    warm_kernels()
    sensor = BenignSensor.from_name(circuit)
    calibration = sensor.instances[0].calibration
    rng = make_rng(derive_seed(seed, "bench-voltages"))
    voltages = rng.normal(1.0, 0.02, size=num_cycles)
    shared = rng.normal(0.0, DEFAULT_SHARED_JITTER_PS, size=num_cycles)

    sampling = {
        "num_cycles": num_cycles,
        "num_endpoints": calibration.num_bits,
        # Zero per-register jitter: the interval-table kernel.  Shared
        # capture-clock jitter is still applied (it only shifts the
        # per-cycle query time), so this is the realistic
        # common-query-time configuration, not a stripped-down one.
        "zero_jitter": _sampling_case(
            calibration, voltages, 0.0, shared, repeats
        ),
        # Full noise model: per-register Gaussian jitter on top.  The
        # Gaussian draw itself dominates here, bounding the achievable
        # speedup; both paths consume the identical generator stream.
        "per_register_jitter": _sampling_case(
            calibration, voltages, DEFAULT_JITTER_PS, shared, repeats
        ),
    }

    workers = max_workers if max_workers is not None else default_workers()
    campaign = AttackCampaign(
        sensor, AES128(ExperimentConfig().key), seed=seed
    )
    campaign.characterize()
    # Both paths must share one chunk grid: jitter seeds are keyed on
    # global chunk starts, so the serial baseline is collected at the
    # sharded driver's chunk size and the correlation comparison is
    # bit-exact at any campaign size.  The chunk itself is sized to the
    # reduction pipeline's working-set footprint, not the trace count.
    chunk = plan_chunk_size(
        campaign_traces, campaign.working_set_bytes_per_trace(), workers
    )

    def serial_run():
        data = campaign.collect_reduced_traces(
            campaign_traces, REDUCTION_HW, chunk_size=chunk
        )
        hypotheses = single_bit_hypothesis(
            data["ciphertexts"][:, DEFAULT_TARGET_BYTE]
        )
        return run_cpa(data["leakage"], hypotheses)

    def sharded_run():
        return sharded_attack(
            campaign,
            campaign_traces,
            reduction=REDUCTION_HW,
            max_workers=workers,
            chunk_size=chunk,
        )

    serial = serial_run()
    sharded = sharded_run()
    identical = bool(
        np.array_equal(serial.correlations, sharded.correlations)
    )
    if not identical:
        raise AssertionError("sharded campaign correlations diverge")
    serial_s = _best_of(repeats, serial_run)
    sharded_s = _best_of(repeats, sharded_run)
    return {
        "circuit": circuit,
        "seed": seed,
        "repeats": repeats,
        "cpu_count": usable_cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_metadata(),
        "sampling": sampling,
        "campaign": {
            "num_traces": campaign_traces,
            "workers": workers,
            "workers_exceed_cpus": _workers_exceed_cpus(workers),
            "chunk_size": chunk,
            "serial_s": serial_s,
            "sharded_s": sharded_s,
            "serial_traces_per_s": campaign_traces / serial_s,
            "sharded_traces_per_s": campaign_traces / sharded_s,
            "speedup": serial_s / sharded_s,
            "identical_correlations": identical,
        },
    }


def write_sampling_benchmark(
    path: str = "BENCH_sampling.json", **kwargs
) -> Dict[str, object]:
    """Run the benchmark and write its record to ``path``."""
    record = run_sampling_benchmark(**kwargs)
    Path(path).write_text(json.dumps(record, indent=2) + "\n")
    return record


def _stage_record(
    reference_s: float, fast_s: float, n: int
) -> Dict[str, float]:
    return {
        "reference_s": reference_s,
        "fast_s": fast_s,
        "reference_traces_per_s": n / reference_s,
        "fast_traces_per_s": n / fast_s,
        "speedup": reference_s / fast_s,
    }


def run_e2e_benchmark(
    gen_traces: int = 4000,
    campaign_traces: int = 40_000,
    circuit: str = "alu",
    repeats: int = 3,
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    seed: int = 1,
) -> Dict[str, object]:
    """Benchmark the vectorized trace-generation pipeline end to end.

    Three per-stage comparisons on ``gen_traces`` random plaintexts —
    batched AES cycle activity vs the per-trace datapath loop, batched
    IIR PDN integration vs the pure-Python recurrence, and the combined
    :class:`~repro.core.tracegen.PhysicalTraceGenerator` fast vs
    reference paths — plus one physical CPA campaign comparison:
    fast kernels sharded over ``max_workers`` workers on the chosen
    ``executor`` backend against the per-trace reference pipeline run
    serially.

    Every stage first asserts the fast output is bit-identical to the
    reference (AES activity, droop waveforms, generated voltages,
    sampled sensor bits, CPA correlations); an ``AssertionError``
    aborts the benchmark, so a recorded speedup can never come from
    computing something different.

    Args:
        gen_traces: traces per trace-generation stage measurement.
        campaign_traces: traces for the campaign comparison.
        circuit: registry circuit used as the sensor.
        repeats: timing repeats (best-of).
        max_workers: campaign worker count (default: machine default).
        executor: campaign executor backend (default: thread).
        seed: campaign seed.
    """
    from repro.aes.batch import encryption_cycle_hd_batch
    from repro.aes.datapath import encryption_cycle_hd
    from repro.core.tracegen import (
        PhysicalTraceGenerator,
        random_plaintexts,
    )
    from repro.experiments.parallel import sharded_physical_attack
    from repro.util.executors import resolve_executor

    warm_kernels()
    cipher = AES128(ExperimentConfig().key)
    sensor = BenignSensor.from_name(circuit)
    generator = PhysicalTraceGenerator(cipher)
    plaintexts = random_plaintexts(
        gen_traces, seed=derive_seed(seed, "bench-e2e-pt")
    )

    # Stage 1: AES datapath activity -----------------------------------
    def aes_reference():
        return np.array(
            [
                encryption_cycle_hd(cipher, bytes(pt))
                for pt in plaintexts
            ],
            dtype=np.int64,
        )

    def aes_fast():
        return encryption_cycle_hd_batch(cipher, plaintexts)

    if not np.array_equal(aes_reference(), aes_fast()):
        raise AssertionError("batched AES activity diverges from loop")
    aes_stage = _stage_record(
        _best_of(repeats, aes_reference),
        _best_of(repeats, aes_fast),
        gen_traces,
    )

    # Stage 2: PDN integration -----------------------------------------
    from repro.aes.batch import cycle_activity_from_states, BatchedAES128
    from repro.pdn.aggressors import aes_current_waveform_batch

    currents = aes_current_waveform_batch(
        cycle_activity_from_states(
            BatchedAES128.from_cipher(cipher).round_states(plaintexts)
        ),
        generator.num_samples,
        generator.start_sample,
        generator.samples_per_cycle,
    )

    def pdn_reference():
        return np.array(
            [generator.pdn._integrate_reference(row) for row in currents]
        )

    def pdn_fast():
        return generator.pdn.integrate_batch(currents)

    if not np.array_equal(pdn_reference(), pdn_fast()):
        raise AssertionError("IIR PDN integration diverges from loop")
    pdn_stage = _stage_record(
        _best_of(repeats, pdn_reference),
        _best_of(repeats, pdn_fast),
        gen_traces,
    )

    # Stage 3: combined physical trace generation ----------------------
    noise_seed = derive_seed(seed, "bench-e2e-noise")
    fast_data = generator.generate(plaintexts, seed=noise_seed)
    reference_data = generator.generate_reference(
        plaintexts, seed=noise_seed
    )
    if not (
        np.array_equal(
            fast_data["ciphertexts"], reference_data["ciphertexts"]
        )
        and np.array_equal(
            fast_data["voltages"], reference_data["voltages"]
        )
    ):
        raise AssertionError("fast trace generation diverges")
    aligned = fast_data["voltages"][
        :, generator.last_round_sample_indices()[0]
    ]
    jitter_seed = derive_seed(seed, "bench-e2e-jitter")
    if not np.array_equal(
        sensor.sample_bits(aligned, seed=jitter_seed),
        sensor.sample_bits(aligned, seed=jitter_seed, reference=True),
    ):
        raise AssertionError("sensor bank path diverges from reference")
    gen_stage = _stage_record(
        _best_of(
            repeats,
            lambda: generator.generate_reference(
                plaintexts, seed=noise_seed
            ),
        ),
        _best_of(
            repeats, lambda: generator.generate(plaintexts, seed=noise_seed)
        ),
        gen_traces,
    )

    # Stage 4: physical CPA campaign -----------------------------------
    workers = max_workers if max_workers is not None else default_workers()
    exceed = _workers_exceed_cpus(workers)
    backend = resolve_executor(executor)
    # Chunk sized to the generation pipeline's working-set footprint
    # (cache-resident chunks), not to the campaign's trace count.
    chunk = plan_chunk_size(
        campaign_traces, generator.working_set_bytes_per_trace(), workers
    )

    def campaign_reference():
        return sharded_physical_attack(
            generator,
            sensor,
            campaign_traces,
            max_workers=1,
            chunk_size=chunk,
            seed=seed,
            reference=True,
        )

    def campaign_fast():
        return sharded_physical_attack(
            generator,
            sensor,
            campaign_traces,
            max_workers=workers,
            chunk_size=chunk,
            executor=backend,
            seed=seed,
        )

    def campaign_fast_serial():
        return sharded_physical_attack(
            generator,
            sensor,
            campaign_traces,
            max_workers=1,
            chunk_size=chunk,
            seed=seed,
        )

    reference_result = campaign_reference()
    fast_result = campaign_fast()
    fast_serial_result = campaign_fast_serial()
    if not np.array_equal(
        reference_result.correlations, fast_result.correlations
    ):
        raise AssertionError("fast campaign correlations diverge")
    if not np.array_equal(
        fast_serial_result.correlations, fast_result.correlations
    ):
        raise AssertionError(
            "parallel campaign correlations diverge from fast-serial"
        )
    reference_s = _best_of(repeats, campaign_reference)
    fast_s = _best_of(repeats, campaign_fast)
    fast_serial_s = _best_of(repeats, campaign_fast_serial)

    return {
        "circuit": circuit,
        "seed": seed,
        "repeats": repeats,
        "cpu_count": usable_cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_metadata(backend),
        "trace_generation": {
            "num_traces": gen_traces,
            "num_samples": generator.num_samples,
            "aes_activity": aes_stage,
            "pdn_integration": pdn_stage,
            "end_to_end": gen_stage,
        },
        "campaign": {
            "num_traces": campaign_traces,
            "workers": workers,
            "workers_exceed_cpus": exceed,
            "executor": backend,
            "chunk_size": chunk,
            "reference_serial_s": reference_s,
            "fast_s": fast_s,
            "fast_serial_s": fast_serial_s,
            "reference_traces_per_s": campaign_traces / reference_s,
            "fast_traces_per_s": campaign_traces / fast_s,
            "speedup_vs_reference": reference_s / fast_s,
            # Honest scaling note: kernels identical, workers varied;
            # advisory-only when the host can't host the worker count.
            **_parallel_speedup_fields(fast_serial_s / fast_s, exceed),
            "identical_correlations": True,
        },
    }


def write_e2e_benchmark(
    path: str = "BENCH_e2e.json", **kwargs
) -> Dict[str, object]:
    """Run the e2e benchmark and write its record to ``path``."""
    record = run_e2e_benchmark(**kwargs)
    Path(path).write_text(json.dumps(record, indent=2) + "\n")
    return record


def _codec_payload_bytes(result) -> Dict[str, object]:
    """Binary-frame vs base64-JSON size of one campaign result.

    The fleet wire moved array payloads off base64-in-JSON onto
    length-prefixed binary frames; this records what that actually
    buys on a real merged attack result (the dominant message class).
    """
    from repro.service.codec import encode, pack_message

    arrays = {
        "checkpoints": result.checkpoints,
        "correlations": result.correlations,
    }
    binary = len(pack_message(arrays))
    binary_raw = len(pack_message(arrays, compress=False))
    base64_json = len(
        json.dumps(encode(arrays), sort_keys=True).encode("utf-8")
    )
    return {
        "base64_json_bytes": base64_json,
        "binary_frame_bytes": binary_raw,
        "binary_frame_zlib_bytes": binary,
        "binary_vs_base64": binary_raw / base64_json,
        "binary_zlib_vs_base64": binary / base64_json,
    }


def run_fleet_benchmark(
    traces: int = 120_000,
    worker_counts=(1, 2),
    repeats: int = 2,
    seed: int = 1,
) -> Dict[str, object]:
    """Benchmark distributed campaign dispatch over loopback workers.

    Starts an in-process campaign service, spawns ``repro worker``
    subprocesses against it over loopback TCP, and times one CPA
    attack job per fleet size.  Before anything is timed, the merged
    fleet result is asserted bit-identical to a direct single-host
    :func:`~repro.service.runners.run_attack` — a recorded speedup can
    never come from merging something different.  Timed repeats clear
    the scheduler's memory cache between submissions so every repeat
    recomputes; worker-side rebuilt-input caches stay warm, which is
    exactly the steady state cache-aware placement targets.

    ``fleet_speedup_2_workers`` (1-worker wall clock over 2-worker
    wall clock) is the figure the CI gate reads; on a host with fewer
    usable CPUs than workers it is ``None`` and the measured ratio is
    recorded as advisory instead (see :func:`_parallel_speedup_fields`
    — time-slicing one core is not a scaling result).
    """
    import asyncio
    import signal
    import subprocess

    import repro
    from repro.service.codec import from_payload
    from repro.service.jobs import JobSpec
    from repro.service.runners import run_attack
    from repro.service.scheduler import CampaignScheduler, SchedulerConfig
    from repro.service.server import CampaignServer

    warm_kernels()
    worker_counts = tuple(sorted(set(int(n) for n in worker_counts)))
    if not worker_counts or worker_counts[0] < 1:
        raise ValueError("worker_counts must be positive integers")
    spec = JobSpec.create(
        "attack", {"traces": int(traces), "seed": int(seed), "fleet": True}
    )
    local_params = dict(spec.params, fleet=False)
    baseline = run_attack(local_params)
    baseline_s = _best_of(repeats, lambda: run_attack(local_params))

    usable = usable_cpu_count()
    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)

    async def measure(num_workers: int) -> Dict[str, object]:
        scheduler = CampaignScheduler(SchedulerConfig(max_concurrency=1))
        server = CampaignServer(scheduler, "127.0.0.1", 0)
        host, port = await server.start()
        # Split the usable cores across the fleet so N workers model N
        # hosts sharing nothing, not N pools oversubscribing one host.
        local = max(1, usable // num_workers)
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "%s:%d" % (host, port),
                    "--name",
                    "bench-w%d" % index,
                    "--workers",
                    str(local),
                    "--quiet",
                ],
                env=env,
            )
            for index in range(num_workers)
        ]
        try:
            deadline = time.monotonic() + 120.0
            while scheduler.fleet.num_workers < num_workers:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        "only %d/%d bench workers registered"
                        % (scheduler.fleet.num_workers, num_workers)
                    )
                await asyncio.sleep(0.1)

            async def one_run():
                state = scheduler.submit(spec)
                async for _event in state.stream():
                    pass
                if state.status != "done":
                    raise RuntimeError(
                        "fleet bench job failed: %s" % state.error
                    )
                return state

            # Identity gate first — untimed, and it doubles as the
            # warm-up that pays worker-side input rebuilding.
            state = await one_run()
            result = from_payload(state.result)
            if not (
                np.array_equal(result.checkpoints, baseline.checkpoints)
                and np.array_equal(
                    result.correlations, baseline.correlations
                )
            ):
                raise AssertionError(
                    "fleet merge over %d worker(s) diverges from the "
                    "single-host result" % num_workers
                )
            best = float("inf")
            for _ in range(repeats):
                scheduler.cache.clear_memory()
                start = time.perf_counter()
                await one_run()
                best = min(best, time.perf_counter() - start)
            return {
                "workers": num_workers,
                "local_workers_each": local,
                "seconds": best,
                "traces_per_s": traces / best,
                "identical_correlations": True,
                "placement": {
                    "warm": scheduler.metrics.counter(
                        "fleet_placement_warm"
                    ).value,
                    "cold": scheduler.metrics.counter(
                        "fleet_placement_cold"
                    ).value,
                },
            }
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
            for proc in procs:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            await server.close()

    fleet: Dict[str, object] = {}
    for count in worker_counts:
        fleet[str(count)] = asyncio.run(measure(count))

    record: Dict[str, object] = {
        "suite": "fleet",
        "seed": seed,
        "traces": traces,
        "repeats": repeats,
        "host": host_metadata(),
        "codec": _codec_payload_bytes(baseline),
        "single_host_s": baseline_s,
        "single_host_traces_per_s": traces / baseline_s,
        "fleet": fleet,
    }
    if 1 in worker_counts and 2 in worker_counts:
        one_s = fleet["1"]["seconds"]
        two_s = fleet["2"]["seconds"]
        exceed = _workers_exceed_cpus(2)
        record["workers_exceed_cpus"] = exceed
        record.update(
            _parallel_speedup_fields(
                one_s / two_s, exceed, prefix="fleet_speedup_2_workers"
            )
        )
        # Flat alias for the CI gate (None on oversubscribed hosts).
        record["fleet_speedup_2_workers"] = record[
            "fleet_speedup_2_workers_same_kernels"
        ]
    return record


def write_fleet_benchmark(
    path: str = "BENCH_fleet.json", **kwargs
) -> Dict[str, object]:
    """Run the fleet benchmark and write its record to ``path``."""
    record = run_fleet_benchmark(**kwargs)
    Path(path).write_text(json.dumps(record, indent=2) + "\n")
    return record


def _spawn_server(
    env: Dict[str, str],
    port: int,
    journal_dir: str,
    spool_dir: str,
    cache_dir: str,
):
    """Start a ``repro serve`` subprocess and wait for its ready line.

    Returns ``(process, bound_port)``.  The server is a real separate
    process — the chaos drill SIGKILLs it, which an in-process server
    cannot survive to measure.
    """
    import subprocess

    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--journal-dir",
            journal_dir,
            "--spool-dir",
            spool_dir,
            "--cache-dir",
            cache_dir,
            "--fleet-grace",
            "30",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    assert proc.stdout is not None
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            bound_port = int(line.rsplit(":", 1)[1])
            return proc, bound_port
        if not line or time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("chaos bench server failed to start")


def _journal_has(journal_dir: str, kind: str) -> bool:
    """Has the journal recorded a ``kind`` lifecycle event yet?

    The chaos harness polls this as its barrier detector: the journal
    is fsync'd before the scheduler acts on a record, so observing
    ``lease_granted`` here means the shard lease genuinely left for a
    worker — killing the server now is maximally inconvenient.
    """
    log = Path(journal_dir) / "journal.jsonl"
    if not log.exists():
        return False
    for raw in log.read_bytes().splitlines():
        try:
            if json.loads(raw).get("record") == kind:
                return True
        except ValueError:
            continue
    return False


def run_chaos_benchmark(
    traces: int = 60_000,
    seed: int = 1,
    plan=None,
) -> Dict[str, object]:
    """The durability drill: SIGKILL the journaled server mid-campaign.

    Starts a real ``repro serve`` subprocess with a write-ahead journal
    plus two ``repro worker --reconnect`` subprocesses, submits two
    jobs (one fleet CPA attack leased to the remote workers, one local
    attack), and — when the journal records the first ``lease_granted``
    barrier — delivers the :class:`~repro.util.faults.FaultPlan`'s
    ``server_kill`` (SIGKILL, no drain).  A fresh server on the same
    port replays the journal, re-admits both jobs, the workers redial
    with seeded backoff (``worker_kill`` at the ``recovered`` barrier
    additionally takes one of them out), and the drill re-attaches to
    both job ids.  Both recovered results are asserted byte-identical
    to undisturbed single-host runs computed before any fault —
    ``identity_diffs`` must be 0 — and the record carries the recovery
    latency and the journal counters.
    """
    import signal
    import subprocess
    import tempfile

    import repro
    from repro.service.client import attach_job, fetch_jobs_overview
    from repro.service.codec import from_payload
    from repro.service.runners import run_attack
    from repro.util.faults import (
        FAULT_SERVER_KILL,
        FAULT_WORKER_KILL,
        FaultPlan,
        FaultSpec,
    )

    if plan is None:
        plan = FaultPlan(
            [
                FaultSpec(FAULT_SERVER_KILL, site="barrier:lease_granted"),
                FaultSpec(FAULT_WORKER_KILL, site="barrier:recovered"),
            ],
            seed=seed,
        )
    warm_kernels()
    from repro.service.jobs import JobSpec

    jobs = {
        name: JobSpec.create("attack", params).params
        for name, params in {
            "fleet-attack": {
                "traces": int(traces),
                "seed": int(seed),
                "fleet": True,
            },
            "local-attack": {
                "traces": int(max(2000, traces // 4)),
                "seed": int(seed) + 1,
                "fleet": False,
            },
        }.items()
    }
    baselines = {
        name: run_attack(dict(params, fleet=False))
        for name, params in jobs.items()
    }

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)

    root = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    journal_dir = str(root / "journal")
    spool_dir = str(root / "spool")
    cache_dir = str(root / "cache")
    workers = []
    server = None
    try:
        server, port = _spawn_server(
            env, 0, journal_dir, spool_dir, cache_dir
        )
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "127.0.0.1:%d" % port,
                    "--name",
                    "chaos-w%d" % index,
                    "--reconnect",
                    "--max-reconnects",
                    "60",
                    "--quiet",
                ],
                env=env,
            )
            for index in range(2)
        ]
        import asyncio

        from repro.service.client import ServiceClient

        async def _submit_all():
            ids = {}
            async with ServiceClient("127.0.0.1", port) as client:
                deadline = time.monotonic() + 60.0
                while True:
                    snapshot = await client.jobs_overview()
                    fleet = snapshot.get("fleet") or {}
                    if len(fleet.get("workers") or ()) >= len(workers):
                        break
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            "chaos bench workers never registered"
                        )
                    await asyncio.sleep(0.1)
                for name, params in jobs.items():
                    ids[name] = await client.submit_nowait(
                        "attack", params
                    )
            return ids

        job_ids = asyncio.run(_submit_all())

        # Barrier: the journal shows a shard lease in a worker's hands.
        deadline = time.monotonic() + 120.0
        while not _journal_has(journal_dir, "lease_granted"):
            if time.monotonic() > deadline:
                raise RuntimeError(
                    "no lease_granted record before the kill deadline"
                )
            if server.poll() is not None:
                raise RuntimeError("chaos bench server died early")
            time.sleep(0.05)

        killed = plan.wants(FAULT_SERVER_KILL, "barrier:lease_granted")
        if killed:
            server.send_signal(signal.SIGKILL)
            server.wait()

        recovery_start = time.perf_counter()
        if killed:
            server, port = _spawn_server(
                env, port, journal_dir, spool_dir, cache_dir
            )
        if plan.wants(FAULT_WORKER_KILL, "barrier:recovered"):
            workers[0].send_signal(signal.SIGKILL)
            workers[0].wait()

        results = {}
        for name, job_id in job_ids.items():
            results[name] = attach_job("127.0.0.1", port, job_id)
        recovery_s = time.perf_counter() - recovery_start

        identity_diffs = 0
        for name, job in results.items():
            if job.get("status") != "done":
                raise RuntimeError(
                    "recovered job %s (%s) finished %s: %s"
                    % (name, job_ids[name], job.get("status"), job.get("error"))
                )
            merged = from_payload(job["result"])
            baseline = baselines[name]
            if not (
                np.array_equal(merged.checkpoints, baseline.checkpoints)
                and np.array_equal(
                    merged.correlations, baseline.correlations
                )
            ):
                identity_diffs += 1
        if identity_diffs:
            raise AssertionError(
                "%d recovered result(s) diverge from the undisturbed "
                "single-host runs" % identity_diffs
            )

        overview = fetch_jobs_overview("127.0.0.1", port)
        counters = {
            name: value
            for name, value in (overview.get("recovery") or {}).items()
            if name != "journal_enabled"
        }
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        if server is not None and server.poll() is None:
            server.send_signal(signal.SIGTERM)
        for proc in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        if server is not None:
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()

    lock_released = not (Path(journal_dir) / "journal.lock").exists()
    return {
        "suite": "chaos",
        "seed": seed,
        "traces": traces,
        "host": host_metadata(),
        "plan": {
            "server_kill": killed,
            "worker_kill": plan.wants(
                FAULT_WORKER_KILL, "barrier:recovered"
            ),
        },
        "jobs": {
            name: {"job_id": job_ids[name], "params": params}
            for name, params in jobs.items()
        },
        "server_killed_at": "barrier:lease_granted",
        "recovery_s": recovery_s,
        "identity_diffs": identity_diffs,
        "identical_results": identity_diffs == 0,
        "journal": counters,
        "lock_released_after_drain": lock_released,
    }


def write_chaos_benchmark(
    path: str = "BENCH_chaos.json", **kwargs
) -> Dict[str, object]:
    """Run the chaos drill and write its record to ``path``."""
    record = run_chaos_benchmark(**kwargs)
    Path(path).write_text(json.dumps(record, indent=2) + "\n")
    return record


def _backend_case(
    backend: str,
    fn: Callable[[], object],
    reference,
    repeats: int,
    n: int,
) -> Dict[str, object]:
    """Warm + assert-bit-identical + time one kernel on one backend."""
    with kernels.use(backend):
        warm = fn()  # warm-up: JIT/compile cost lands here, untimed
        outputs = warm if isinstance(warm, tuple) else (warm,)
        expected = (
            reference if isinstance(reference, tuple) else (reference,)
        )
        for got, want in zip(outputs, expected):
            if not np.array_equal(got, want):
                raise AssertionError(
                    "backend %r output diverges from the numpy "
                    "reference" % backend
                )
        seconds = _best_of(repeats, fn)
    return {
        "seconds": seconds,
        "traces_per_s": n / seconds,
        "identical_to_numpy": True,
    }


def run_kernels_benchmark(
    aes_traces: int = 20_000,
    pdn_traces: int = 2_000,
    pdn_samples: int = 1_024,
    cpa_traces: int = 50_000,
    resample_traces: int = 4_000,
    resample_samples: int = 256,
    repeats: int = 3,
    seed: int = 1,
) -> Dict[str, object]:
    """Per-backend comparison of the registered hot kernels.

    For each kernel (``aes``: fused activity+ciphertexts, ``pdn``:
    batched IIR droop integration, ``cpa``: streaming accumulate over
    256 candidates, ``resample``: polyphase upfirdn over a trace
    batch), every backend available on this host is warmed, asserted
    bit-identical to the numpy reference, and timed best-of
    ``repeats``.  ``speedup_vs_numpy`` on the resolved backend is the
    number the acceptance gate reads.
    """
    from repro.aes.batch import BatchedAES128, cycle_activity_and_ciphertexts
    from repro.attacks.cpa import StreamingCPA
    from repro.pdn.model import PDNModel

    rng = make_rng(derive_seed(seed, "bench-kernels"))
    record: Dict[str, object] = {
        "seed": seed,
        "repeats": repeats,
        "host": host_metadata(),
        "kernels": {},
    }

    def sweep(kernel: str, fn: Callable[[], object], n: int) -> None:
        with kernels.use("numpy"):
            reference = fn()
        backends: Dict[str, object] = {}
        for backend in kernels.available_backends(kernel):
            backends[backend] = _backend_case(
                backend, fn, reference, repeats, n
            )
        numpy_s = backends["numpy"]["seconds"]
        for case in backends.values():
            case["speedup_vs_numpy"] = numpy_s / case["seconds"]
        record["kernels"][kernel] = {
            "num_traces": n,
            "resolved_backend": kernels.active_backends()[kernel],
            "backends": backends,
        }

    batched = BatchedAES128(bytes(range(16)))
    aes_pt = rng.integers(0, 256, size=(aes_traces, 16), dtype=np.uint8)
    sweep(
        "aes",
        lambda: cycle_activity_and_ciphertexts(batched, aes_pt),
        aes_traces,
    )

    pdn = PDNModel()
    currents = rng.normal(0.02, 0.005, size=(pdn_traces, pdn_samples))
    sweep("pdn", lambda: pdn.integrate_batch(currents), pdn_traces)

    leakage = rng.integers(0, 33, size=cpa_traces).astype(np.float64)
    hypotheses = rng.integers(
        0, 2, size=(cpa_traces, 256)
    ).astype(np.int8)

    def cpa_fn():
        engine = StreamingCPA()
        engine.update(leakage, hypotheses)
        return (
            np.float64(engine._sum_x),
            np.float64(engine._sum_xx),
            engine._sum_h,
            engine._sum_hh,
            engine._sum_xh,
        )

    sweep("cpa", cpa_fn, cpa_traces)

    from repro.preprocess.resample import polyphase_resample

    resample_batch = rng.normal(
        size=(resample_traces, resample_samples)
    )
    sweep(
        "resample",
        lambda: polyphase_resample(resample_batch, 3, 2),
        resample_traces,
    )
    return record


def write_kernels_benchmark(
    path: str = "BENCH_kernels.json", **kwargs
) -> Dict[str, object]:
    """Run the kernels benchmark and write its record to ``path``."""
    record = run_kernels_benchmark(**kwargs)
    Path(path).write_text(json.dumps(record, indent=2) + "\n")
    return record


def run_preprocess_benchmark(
    traces: int = 40_000,
    align_traces: int = 4096,
    severities=(0, 1, 2, 3),
    repeats: int = 3,
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    seed: int = 1,
) -> Dict[str, object]:
    """Acquisition-realism benchmark: alignment cost and what it buys.

    Three sections, identity gates asserted *before* any timing:

    * ``identity`` — a disabled :class:`MisalignmentSpec` is
      bit-identical to no spec at all, and the preprocessed physical
      campaign is bit-identical at 1 vs 2 workers (the preprocessing
      runs shard-locally, so this is the property that makes its
      timings meaningful);
    * ``alignment`` — correlation-alignment throughput
      (estimate + apply) over a misaligned batch, best-of ``repeats``;
    * ``severity_sweep`` — final key rank of the end-to-end physical
      CPA at each trigger-misalignment severity, raw vs
      correlation-aligned, plus ``recovery_frontier``: the smallest
      severity where the raw attack fails and the aligned one still
      recovers the key.
    """
    from repro.core.endpoint_sensor import BenignSensor
    from repro.core.tracegen import (
        PhysicalTraceGenerator,
        random_plaintexts,
    )
    from repro.experiments.parallel import sharded_physical_attack
    from repro.preprocess.align import apply_shifts, estimate_shifts
    from repro.preprocess.pipeline import resolve_preprocess
    from repro.preprocess.spec import MisalignmentSpec, PreprocessSpec

    warm_kernels()
    cipher = AES128(bytes(range(16)))
    sensor = BenignSensor.from_name("alu")

    # Tail margin around the encryption window (start_sample=12 in 88
    # samples) so trigger shifts displace content instead of clipping
    # it at the trace edge — the realistic acquisition setting.
    def generator(severity: int) -> PhysicalTraceGenerator:
        misalignment = (
            MisalignmentSpec(shift_mode="uniform", shift_samples=severity)
            if severity
            else None
        )
        return PhysicalTraceGenerator(
            cipher,
            start_sample=12,
            num_samples=88,
            misalignment=misalignment,
        )

    max_shift = int(max(severities)) + 2
    align_spec = PreprocessSpec(align="correlation", max_shift=max_shift)

    # -- identity gates (assert before timing) -------------------------
    clean = generator(0)
    disabled = PhysicalTraceGenerator(
        cipher,
        start_sample=12,
        num_samples=88,
        misalignment=MisalignmentSpec(),
    )
    probe_pt = random_plaintexts(256, seed=derive_seed(seed, "bench-pre-pt"))
    base = clean.generate(probe_pt, seed=derive_seed(seed, "bench-pre"))
    withspec = disabled.generate(
        probe_pt, seed=derive_seed(seed, "bench-pre")
    )
    if not all(
        np.array_equal(base[k], withspec[k]) for k in ("voltages",
                                                       "ciphertexts")
    ):
        raise AssertionError(
            "disabled MisalignmentSpec is not bit-identical to no spec"
        )
    gate_gen = generator(2)
    gate_plan = resolve_preprocess(align_spec, gate_gen, seed, columns=(3,))
    gate = [
        sharded_physical_attack(
            gate_gen,
            sensor,
            4000,
            max_workers=workers,
            executor=executor,
            seed=seed,
            preprocess=gate_plan,
        )
        for workers in (1, 2)
    ]
    if not np.array_equal(gate[0].correlations, gate[1].correlations):
        raise AssertionError(
            "preprocessed campaign is not bit-identical at 1 vs 2 workers"
        )

    record: Dict[str, object] = {
        "seed": seed,
        "traces": int(traces),
        "repeats": repeats,
        "host": host_metadata(executor),
        "identity": {
            "disabled_spec_bit_identical": True,
            "workers_1_vs_2_bit_identical": True,
        },
    }

    # -- alignment throughput ------------------------------------------
    bank = generator(3)
    batch = bank.generate(
        random_plaintexts(
            align_traces, seed=derive_seed(seed, "bench-align-pt")
        ),
        seed=derive_seed(seed, "bench-align"),
    )["voltages"]
    reference = resolve_preprocess(
        align_spec, bank, seed, columns=(3,)
    ).reference

    def align_once():
        shifts = estimate_shifts(batch, reference, max_shift, "correlation")
        return apply_shifts(batch, shifts)

    align_s = _best_of(repeats, align_once)
    record["alignment"] = {
        "traces": int(align_traces),
        "num_samples": int(bank.num_samples),
        "max_shift": max_shift,
        "seconds": align_s,
        "traces_per_s": align_traces / align_s,
    }

    # -- attack success vs misalignment severity -----------------------
    sweep = []
    frontier = None
    for severity in severities:
        jittered = generator(int(severity))
        raw = sharded_physical_attack(
            jittered,
            sensor,
            traces,
            max_workers=max_workers,
            executor=executor,
            seed=seed,
        )
        plan = resolve_preprocess(align_spec, jittered, seed, columns=(3,))
        aligned = sharded_physical_attack(
            jittered,
            sensor,
            traces,
            max_workers=max_workers,
            executor=executor,
            seed=seed,
            preprocess=plan,
        )
        entry = {
            "severity": int(severity),
            "raw_rank": int(raw.key_ranks()[-1]),
            "raw_recovered": bool(raw.key_ranks()[-1] == 0),
            "aligned_rank": int(aligned.key_ranks()[-1]),
            "aligned_recovered": bool(aligned.key_ranks()[-1] == 0),
        }
        sweep.append(entry)
        if (
            frontier is None
            and entry["raw_rank"] > 0
            and entry["aligned_rank"] == 0
        ):
            frontier = int(severity)
    record["severity_sweep"] = sweep
    record["recovery_frontier"] = frontier
    return record


def write_preprocess_benchmark(
    path: str = "BENCH_preprocess.json", **kwargs
) -> Dict[str, object]:
    """Run the preprocess benchmark and write its record to ``path``."""
    record = run_preprocess_benchmark(**kwargs)
    Path(path).write_text(json.dumps(record, indent=2) + "\n")
    return record

"""Performance harness for the sampling and campaign fast paths.

:func:`run_sampling_benchmark` times the four sensor-sampling
configurations (bank vs reference loop, with and without per-register
jitter) and one end-to-end CPA campaign (serial vs sharded), and
returns a JSON-serializable record; :func:`write_sampling_benchmark`
persists it (``BENCH_sampling.json`` at the repo root is the tracked
snapshot, regenerated via ``repro bench``).

Methodology:

* every timed path runs once untimed to warm lazily built tables (the
  bank's interval-word table, the campaign's characterization) so the
  numbers measure steady-state sampling throughput;
* each measurement is the best of ``repeats`` runs (minimum wall
  clock), the standard way to suppress scheduler noise;
* bank and reference paths are asserted bit-identical on every run, so
  a speedup can never come from computing something different.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from repro.attacks.cpa import run_cpa
from repro.attacks.models import single_bit_hypothesis
from repro.core.attack import (
    DEFAULT_TARGET_BYTE,
    REDUCTION_HW,
    AttackCampaign,
)
from repro.core.endpoint_sensor import (
    DEFAULT_JITTER_PS,
    DEFAULT_SHARED_JITTER_PS,
    BenignSensor,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import default_workers, sharded_attack
from repro.util.rng import derive_seed, make_rng

from repro.aes.aes128 import AES128


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sampling_case(
    calibration,
    voltages: np.ndarray,
    jitter_ps: float,
    shared: Optional[np.ndarray],
    repeats: int,
) -> Dict[str, float]:
    """Time bank vs reference on identical inputs; assert equality."""
    kwargs = dict(jitter_ps=jitter_ps, seed=7, shared_jitter_ps=shared)
    bank_out = calibration.sample_bits(voltages, **kwargs)
    reference_out = calibration.sample_bits_reference(voltages, **kwargs)
    if not np.array_equal(bank_out, reference_out):
        raise AssertionError("bank and reference paths disagree")
    n = voltages.shape[0]
    bank_s = _best_of(
        repeats, lambda: calibration.sample_bits(voltages, **kwargs)
    )
    reference_s = _best_of(
        repeats,
        lambda: calibration.sample_bits_reference(voltages, **kwargs),
    )
    return {
        "bank_s": bank_s,
        "reference_s": reference_s,
        "bank_traces_per_s": n / bank_s,
        "reference_traces_per_s": n / reference_s,
        "speedup": reference_s / bank_s,
    }


def run_sampling_benchmark(
    num_cycles: int = 100_000,
    circuit: str = "alu",
    campaign_traces: int = 100_000,
    repeats: int = 3,
    max_workers: Optional[int] = None,
    seed: int = 1,
) -> Dict[str, object]:
    """Benchmark the sampling kernels and the sharded campaign driver.

    Args:
        num_cycles: voltage samples per sampling measurement (the
            acceptance target is the 100k-cycle ALU campaign).
        circuit: registry circuit to benchmark.
        campaign_traces: traces for the serial-vs-sharded campaign
            comparison.
        repeats: timing repeats (best-of).
        max_workers: sharded-driver worker count (default: machine
            dependent).
        seed: campaign/jitter seed.
    """
    sensor = BenignSensor.from_name(circuit)
    calibration = sensor.instances[0].calibration
    rng = make_rng(derive_seed(seed, "bench-voltages"))
    voltages = rng.normal(1.0, 0.02, size=num_cycles)
    shared = rng.normal(0.0, DEFAULT_SHARED_JITTER_PS, size=num_cycles)

    sampling = {
        "num_cycles": num_cycles,
        "num_endpoints": calibration.num_bits,
        # Zero per-register jitter: the interval-table kernel.  Shared
        # capture-clock jitter is still applied (it only shifts the
        # per-cycle query time), so this is the realistic
        # common-query-time configuration, not a stripped-down one.
        "zero_jitter": _sampling_case(
            calibration, voltages, 0.0, shared, repeats
        ),
        # Full noise model: per-register Gaussian jitter on top.  The
        # Gaussian draw itself dominates here, bounding the achievable
        # speedup; both paths consume the identical generator stream.
        "per_register_jitter": _sampling_case(
            calibration, voltages, DEFAULT_JITTER_PS, shared, repeats
        ),
    }

    workers = max_workers if max_workers is not None else default_workers()
    # Both paths must share one chunk grid: jitter seeds are keyed on
    # global chunk starts, so the serial baseline is collected at the
    # sharded driver's chunk size and the correlation comparison is
    # bit-exact at any campaign size.
    chunk = max(1, campaign_traces // (2 * workers))
    campaign = AttackCampaign(
        sensor, AES128(ExperimentConfig().key), seed=seed
    )
    campaign.characterize()

    def serial_run():
        data = campaign.collect_reduced_traces(
            campaign_traces, REDUCTION_HW, chunk_size=chunk
        )
        hypotheses = single_bit_hypothesis(
            data["ciphertexts"][:, DEFAULT_TARGET_BYTE]
        )
        return run_cpa(data["leakage"], hypotheses)

    def sharded_run():
        return sharded_attack(
            campaign,
            campaign_traces,
            reduction=REDUCTION_HW,
            max_workers=workers,
            chunk_size=chunk,
        )

    serial = serial_run()
    sharded = sharded_run()
    identical = bool(
        np.array_equal(serial.correlations, sharded.correlations)
    )
    serial_s = _best_of(repeats, serial_run)
    sharded_s = _best_of(repeats, sharded_run)
    return {
        "circuit": circuit,
        "seed": seed,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "sampling": sampling,
        "campaign": {
            "num_traces": campaign_traces,
            "workers": workers,
            "chunk_size": chunk,
            "serial_s": serial_s,
            "sharded_s": sharded_s,
            "serial_traces_per_s": campaign_traces / serial_s,
            "sharded_traces_per_s": campaign_traces / sharded_s,
            "speedup": serial_s / sharded_s,
            "identical_correlations": identical,
        },
    }


def write_sampling_benchmark(
    path: str = "BENCH_sampling.json", **kwargs
) -> Dict[str, object]:
    """Run the benchmark and write its record to ``path``."""
    record = run_sampling_benchmark(**kwargs)
    Path(path).write_text(json.dumps(record, indent=2) + "\n")
    return record

"""Attack-quality metrics shared by experiments and benches.

Beyond the per-run metrics embedded in :class:`repro.attacks.CPAResult`
(rank, measurements-to-disclosure), this module provides campaign-level
metrics: guessing entropy over repeated attacks, success rate, and a
compact summary record used in EXPERIMENTS.md tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.attacks.cpa import CPAResult


@dataclass(frozen=True)
class AttackSummary:
    """One row of an experiment's result table.

    Attributes:
        label: experiment identifier (e.g. ``"fig10_cpa_alu"``).
        num_traces: traces used.
        disclosed: key byte recovered and stable at the end.
        mtd: measurements-to-disclosure, or None.
        final_margin: |corr(correct)| minus the best wrong candidate's
            |corr| at the final checkpoint (positive = separated).
    """

    label: str
    num_traces: int
    disclosed: bool
    mtd: Optional[int]
    final_margin: float


def summarize(label: str, result: CPAResult) -> AttackSummary:
    """Condense a :class:`CPAResult` into an :class:`AttackSummary`."""
    if result.correct_key is None:
        raise ValueError("result carries no correct key")
    final = np.abs(result.correlations[-1])
    correct = final[result.correct_key]
    wrong = np.delete(final, result.correct_key)
    return AttackSummary(
        label=label,
        num_traces=int(result.checkpoints[-1]),
        disclosed=result.disclosed,
        mtd=result.measurements_to_disclosure(),
        final_margin=float(correct - wrong.max()),
    )


def guessing_entropy(ranks: Sequence[int]) -> float:
    """Average key rank over repeated attack runs (lower = better)."""
    arr = np.asarray(list(ranks), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one rank")
    return float(arr.mean())


def success_rate(ranks: Sequence[int], threshold: int = 0) -> float:
    """Fraction of runs whose final rank is <= ``threshold``."""
    arr = np.asarray(list(ranks), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one rank")
    return float((arr <= threshold).mean())


def correlation_confidence(result: CPAResult) -> np.ndarray:
    """Ratio of correct-key |corr| to the 99.99% sampling-noise bound.

    The sampling distribution of Pearson correlation under the null is
    approximately N(0, 1/sqrt(n)); values above ~4/sqrt(n) indicate a
    genuine dependency.  Returns the ratio per checkpoint — the point
    where it durably exceeds 1 matches the visual crossing of the red
    curve out of the gray band in the paper's progress figures.
    """
    if result.correct_key is None:
        raise ValueError("result carries no correct key")
    n = result.checkpoints.astype(float)
    bound = 4.0 / np.sqrt(n)
    correct = np.abs(result.correlations[:, result.correct_key])
    return correct / bound

"""Leakage hypothesis models for key-recovery attacks.

The paper performs "textbook CPA using a single bit mask model before
the final SBox computation" (Sec. IV): for a guessed last-round key
byte ``k``, the predicted leakage of a trace with ciphertext byte ``c``
is one bit of ``InvSBox(c XOR k)`` — the state byte entering the final
SubBytes.  Additional classical models (Hamming weight/distance of the
same intermediate) are provided for the ablation benches.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.aes.leakage import INV_SBOX_TABLE, _POPCOUNT8
from repro.util import kernels

#: Paper's target: the 4th byte (index 3) of the last round key.
DEFAULT_TARGET_BYTE = 3
#: Paper's target: the 1st bit (index 0) of the state byte.
DEFAULT_TARGET_BIT = 0


def _validate_ct_bytes(ct_bytes: np.ndarray) -> np.ndarray:
    arr = np.asarray(ct_bytes)
    if arr.ndim != 1:
        raise ValueError("ct_bytes must be 1-D (one byte per trace)")
    return arr.astype(np.uint8)


def inverse_sbox_intermediate(ct_bytes: np.ndarray) -> np.ndarray:
    """``InvSBox(c XOR k)`` for all 256 key guesses.

    Args:
        ct_bytes: (N,) ciphertext bytes at the target position.

    Returns:
        uint8 array (N, 256): the hypothetical state byte before the
        final SBox, per trace and key candidate.
    """
    arr = _validate_ct_bytes(ct_bytes)
    guesses = np.arange(256, dtype=np.uint8)
    xored = arr[:, None] ^ guesses[None, :]
    return INV_SBOX_TABLE[xored]


def _single_bit_numpy(ct_bytes: np.ndarray, bit: int) -> np.ndarray:
    intermediate = inverse_sbox_intermediate(ct_bytes)
    return ((intermediate >> bit) & 1).astype(np.int8)


def _hamming_weight_numpy(ct_bytes: np.ndarray) -> np.ndarray:
    return _POPCOUNT8[inverse_sbox_intermediate(ct_bytes)].astype(np.int8)


# The hypothesis blocks ride on the AES kernel (same tables, same
# uint8 arithmetic); native backends fuse the InvSBox lookup with the
# bit/HW extraction instead of materializing the (N, 256) intermediate.
kernels.register_backend(
    "aes",
    "numpy",
    single_bit_hypothesis=_single_bit_numpy,
    hamming_weight_hypothesis=_hamming_weight_numpy,
)


def single_bit_hypothesis(
    ct_bytes: np.ndarray, bit: int = DEFAULT_TARGET_BIT
) -> np.ndarray:
    """The paper's single-bit mask model.

    Returns an (N, 256) {0,1} matrix: bit ``bit`` of the state byte
    before the final SBox for each key candidate.
    """
    if not 0 <= bit < 8:
        raise ValueError("bit must be 0..7, got %d" % bit)
    arr = _validate_ct_bytes(ct_bytes)
    return kernels.dispatch("aes", "single_bit_hypothesis")(arr, bit)


def hamming_weight_hypothesis(ct_bytes: np.ndarray) -> np.ndarray:
    """Hamming weight of the state byte before the final SBox."""
    arr = _validate_ct_bytes(ct_bytes)
    return kernels.dispatch("aes", "hamming_weight_hypothesis")(arr)


def hamming_distance_hypothesis(
    ct_bytes_written: np.ndarray, ct_bytes_target: np.ndarray
) -> np.ndarray:
    """HD between the pre-SBox byte and the ciphertext byte written
    over its register cell (full last-round register model).

    Args:
        ct_bytes_written: (N,) ciphertext byte at the *destination*
            (post-ShiftRows) position of the target cell.
        ct_bytes_target: (N,) ciphertext byte at the target position
            used for the key guess.
    """
    intermediate = inverse_sbox_intermediate(ct_bytes_target)
    written = _validate_ct_bytes(ct_bytes_written)
    return _POPCOUNT8[intermediate ^ written[:, None]].astype(np.int8)


#: Registry used by benches to sweep hypothesis models.
HYPOTHESIS_MODELS: Dict[str, Callable[..., np.ndarray]] = {
    "single_bit": single_bit_hypothesis,
    "hamming_weight": hamming_weight_hypothesis,
}

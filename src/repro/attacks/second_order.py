"""Second-order CPA against first-order masked implementations.

First-order boolean masking (``repro.aes.masking``) removes the
*mean* dependence of the leakage on the secret: ``E[L | s]`` is
constant.  It does not remove the *variance* dependence: when both the
masked share ``HW(s XOR m)`` and the mask share ``HW(m)`` contribute to
the same sample, the spread of their sum varies with ``s`` — bits of
``s`` that are 0 let the two shares' contributions correlate, bits that
are 1 anti-correlate.

The classical second-order attack (Chari et al. 1999; Prouff/Rivain/
Bevan's analysis) therefore preprocesses traces with the *centered
square* ``(L - mean(L))**2`` and correlates against a Hamming-weight
hypothesis.  The quadratic combining squares the noise too, so the
trace cost grows roughly with ``(sigma/signal)**4`` — masking does not
make the attack impossible, only much more expensive, and that is
measurable here.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.cpa import CPAResult, run_cpa
from repro.attacks.models import hamming_weight_hypothesis


def centered_square(leakage: np.ndarray) -> np.ndarray:
    """Second-order preprocessing: ``(L - mean(L))**2``.

    For a sum of two share leakages, this statistic's expectation over
    the uniform mask is an affine function of the Hamming weight of the
    unmasked intermediate.
    """
    x = np.asarray(leakage, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("leakage must be 1-D")
    return (x - x.mean()) ** 2


def run_second_order_cpa(
    leakage: np.ndarray,
    ct_bytes: np.ndarray,
    correct_key: Optional[int] = None,
    checkpoints: Optional[Sequence[int]] = None,
) -> CPAResult:
    """Second-order CPA on a masked victim's traces.

    Args:
        leakage: (N,) raw leakage samples (containing both shares'
            contributions, as a single-sample masked core produces).
        ct_bytes: (N,) ciphertext bytes at the target position.
        correct_key: true key byte for metrics.
        checkpoints: progress checkpoints.

    Returns:
        a :class:`CPAResult` over the 256 key candidates.
    """
    preprocessed = centered_square(leakage)
    hypotheses = hamming_weight_hypothesis(ct_bytes)
    return run_cpa(
        preprocessed,
        hypotheses,
        checkpoints=checkpoints,
        correct_key=correct_key,
    )

"""Classic single-bit Differential Power Analysis (Kocher et al. 1999).

Provided as a comparison baseline to the CPA engine: traces are
partitioned by the hypothesis bit and the difference of means is the
distinguisher.  For single-bit hypotheses DPA and CPA give equivalent
rankings; having both lets tests cross-validate the engines and lets
the ablation benches show the equivalence empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class DPAResult:
    """Difference-of-means score per key candidate.

    Attributes:
        differences: (256,) signed difference of means.
        correct_key: true key byte, if provided.
    """

    differences: np.ndarray
    correct_key: Optional[int] = None

    @property
    def best_guess(self) -> int:
        return int(np.argmax(np.abs(self.differences)))

    @property
    def disclosed(self) -> bool:
        if self.correct_key is None:
            raise ValueError("result carries no correct key")
        return self.best_guess == self.correct_key

    def key_rank(self) -> int:
        """Rank of the correct key (0 = best)."""
        if self.correct_key is None:
            raise ValueError("result carries no correct key")
        scores = np.abs(self.differences)
        return int(np.sum(scores > scores[self.correct_key]))


def run_dpa(
    leakage: np.ndarray,
    hypotheses: np.ndarray,
    correct_key: Optional[int] = None,
) -> DPAResult:
    """Difference-of-means DPA over a {0,1} hypothesis matrix.

    Args:
        leakage: (N,) measured leakage values.
        hypotheses: (N, 256) binary selection matrix.
        correct_key: true key byte for metrics.
    """
    x = np.asarray(leakage, dtype=np.float64)
    h = np.asarray(hypotheses, dtype=np.float64)
    if x.ndim != 1 or h.ndim != 2 or h.shape[0] != x.shape[0]:
        raise ValueError("leakage (N,) and hypotheses (N, K) required")
    if h.size and (h.min() < 0 or h.max() > 1):
        raise ValueError("DPA requires a binary hypothesis matrix")
    ones = h.sum(axis=0)
    zeros = x.shape[0] - ones
    sum_ones = h.T @ x
    sum_zeros = x.sum() - sum_ones
    with np.errstate(divide="ignore", invalid="ignore"):
        mean_ones = np.where(ones > 0, sum_ones / ones, 0.0)
        mean_zeros = np.where(zeros > 0, sum_zeros / zeros, 0.0)
    return DPAResult(
        differences=mean_ones - mean_zeros, correct_key=correct_key
    )

"""Full 16-byte last-round-key recovery (extension of the paper).

The paper demonstrates CPA on one key byte ("the 1st bit of the 4th
byte of the last secret round key"); nothing about the technique is
byte-specific.  This module attacks all 16 bytes: each key byte ``j``
is guessed from ciphertext byte ``j``, predicting a bit of the pre-SBox
state cell ``SHIFT_ROWS_SOURCE[j]``, whose switching activity leaks at
the last-round cycle processing that cell's column.  The recovered
round-10 key is then inverted through the key schedule
(:func:`repro.aes.aes128.invert_key_schedule`) to obtain the master
key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.aes.aes128 import invert_key_schedule
from repro.aes.leakage import SHIFT_ROWS_SOURCE
from repro.attacks.cpa import CPAResult, run_cpa
from repro.attacks.models import single_bit_hypothesis
from repro.util.executors import CampaignHealth, RetryPolicy, map_ordered
from repro.util.shm import ArrayFanout, fanout_state


def column_of_key_byte(byte_index: int) -> int:
    """The state column whose cycle leaks key byte ``byte_index``.

    Guessing key byte ``j`` targets the pre-SBox state cell at
    ``SHIFT_ROWS_SOURCE[j]``; that cell belongs to column
    ``SHIFT_ROWS_SOURCE[j] // 4`` of the 32-bit datapath.
    """
    if not 0 <= byte_index < 16:
        raise ValueError("byte index must be 0..15, got %d" % byte_index)
    return int(SHIFT_ROWS_SOURCE[byte_index]) // 4


@dataclass
class FullKeyResult:
    """Outcome of a 16-byte key-recovery campaign.

    Attributes:
        byte_results: per-key-byte CPA results (index = key byte).
        true_last_round_key: ground-truth round-10 key, when provided.
    """

    byte_results: List[CPAResult]
    true_last_round_key: Optional[bytes] = None

    @property
    def recovered_last_round_key(self) -> bytes:
        """Best-guess round-10 key."""
        return bytes(result.best_guess for result in self.byte_results)

    @property
    def recovered_master_key(self) -> bytes:
        """The master key implied by the recovered round-10 key."""
        return invert_key_schedule(self.recovered_last_round_key)

    @property
    def num_correct_bytes(self) -> int:
        if self.true_last_round_key is None:
            raise ValueError("result carries no ground truth")
        return sum(
            guess == true
            for guess, true in zip(
                self.recovered_last_round_key, self.true_last_round_key
            )
        )

    @property
    def full_key_recovered(self) -> bool:
        if self.true_last_round_key is None:
            raise ValueError("result carries no ground truth")
        return self.recovered_last_round_key == self.true_last_round_key

    def byte_ranks(self) -> List[int]:
        """Final rank of the correct candidate per byte."""
        return [result.key_ranks()[-1] for result in self.byte_results]

    def log2_remaining_enumeration(self) -> float:
        """log2 of the key-enumeration work left after the attack.

        Each byte whose correct candidate sits at rank ``r`` costs a
        factor ``r + 1`` of enumeration (try candidates in correlation
        order); the product over bytes bounds the residual brute-force
        effort.  0.0 means the key is read off directly; anything below
        ~2^30 is trivially enumerable offline.
        """
        ranks = self.byte_ranks()
        return float(np.sum(np.log2(np.asarray(ranks, dtype=float) + 1.0)))

    def worst_mtd(self) -> Optional[int]:
        """Traces needed until *every* byte is stably disclosed."""
        mtds = [
            result.measurements_to_disclosure()
            for result in self.byte_results
        ]
        if any(mtd is None for mtd in mtds):
            return None
        return max(mtds)  # type: ignore[arg-type]


def _attack_byte_task(task: Dict[str, object]) -> CPAResult:
    """One key byte's CPA (module-level so process pools can pickle it).

    The task carries only the byte index plus a fan-out context id; the
    (N, 4) leakage matrix and (N, 16) ciphertext block are resolved in
    the worker — from driver memory on in-process backends, from a
    shared-memory mapping on the process backend — so no task or retry
    ever re-serializes the campaign data.
    """
    state = fanout_state(task["ctx"])
    byte_index: int = task["byte_index"]
    leakage = state.array("leakage")
    ct = state.array("ciphertexts")
    correct_key = state.heavy["correct_key"]
    hypotheses = single_bit_hypothesis(
        ct[:, byte_index], bit=state.heavy["target_bit"]
    )
    return run_cpa(
        leakage[:, column_of_key_byte(byte_index)],
        hypotheses,
        checkpoints=state.heavy["checkpoints"],
        correct_key=None if correct_key is None else correct_key[byte_index],
    )


def recover_last_round_key(
    column_leakage: np.ndarray,
    ciphertexts: np.ndarray,
    target_bit: int = 0,
    correct_key: Optional[bytes] = None,
    checkpoints: Optional[List[int]] = None,
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    health: Optional[CampaignHealth] = None,
) -> FullKeyResult:
    """CPA over all 16 last-round key bytes.

    Args:
        column_leakage: (N, 4) sensor readings, one per last-round
            column cycle (from
            :meth:`repro.core.AttackCampaign.collect_column_traces` or
            :meth:`repro.aes.LeakageModel.column_voltages`).
        ciphertexts: (N, 16) observed ciphertext blocks.
        target_bit: hypothesis bit within the pre-SBox byte.
        correct_key: true round-10 key for metrics, if known.
        checkpoints: progress checkpoints forwarded to each CPA.
        max_workers: if greater than 1, run the 16 independent per-byte
            CPAs on a worker pool (each byte's CPA is a fixed function
            of its inputs, so the result is identical to the serial
            loop).  Default: serial.
        executor: ``"thread"`` (default) or ``"process"`` — see
            :func:`repro.util.executors.map_ordered`.
        policy: retry/timeout/degradation policy; with ``health``,
            switches the per-byte CPAs onto the resilient path of
            :func:`map_ordered` (each byte's CPA is deterministic, so
            retries cannot change the result).
        health: accumulates the runtime's recovery events.

    Returns:
        a :class:`FullKeyResult` with one CPA result per key byte.
    """
    leakage = np.asarray(column_leakage, dtype=np.float64)
    ct = np.asarray(ciphertexts, dtype=np.uint8)
    if leakage.ndim != 2 or leakage.shape[1] != 4:
        raise ValueError("column_leakage must have shape (N, 4)")
    if ct.shape != (leakage.shape[0], 16):
        raise ValueError("ciphertexts must have shape (N, 16)")

    kwargs: Dict[str, object] = {}
    if policy is not None or health is not None:
        kwargs = dict(
            policy=policy,
            health=health,
            sites=["byte[%d]" % index for index in range(16)],
        )
    workers = 1 if max_workers is None else max_workers
    with ArrayFanout(
        heavy={
            "target_bit": target_bit,
            "checkpoints": checkpoints,
            "correct_key": correct_key,
        },
        arrays={"leakage": leakage, "ciphertexts": ct},
        executor=executor,
        workers=workers,
        num_tasks=16,
    ) as fanout:
        tasks = [
            {"ctx": fanout.context_id, "byte_index": byte_index}
            for byte_index in range(16)
        ]
        results = map_ordered(
            _attack_byte_task,
            tasks,
            max_workers=workers,
            executor=executor,
            **fanout.map_kwargs,
            **kwargs,
        )
    return FullKeyResult(
        byte_results=results,
        true_last_round_key=correct_key,
    )

"""Correlation Power Analysis engine.

Implements textbook CPA (Brier et al.): Pearson correlation between a
measured leakage series and a hypothesis matrix over 256 key-byte
candidates, with *progress tracking* — correlations re-evaluated at
growing trace counts — to produce the paper's
"correlation progress over 500k traces" figures and the
measurements-to-disclosure metric.

The implementation streams over trace blocks and keeps only running
sums (O(256) state), so half-million-trace campaigns fit comfortably in
memory regardless of checkpoint density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.util import kernels
from repro.util.errors import ReproError


def _accumulate_numpy(x: np.ndarray, h: np.ndarray):
    """Reference CPA accumulate: block sums, or None on non-finite.

    Returns ``(sum_x, sum_xx, sum_h, sum_hh, sum_xh)`` for a finite
    block.  Returning None (instead of raising) keeps the op contract
    backend-agnostic; :meth:`StreamingCPA.update` re-runs the finite
    checks to raise the exact :class:`NonFiniteValuesError`, and no
    accumulator state is touched either way.
    """
    h = np.asarray(h, dtype=np.float64)
    if not np.isfinite(x).all() or not np.isfinite(h).all():
        return None
    return (
        x.sum(),
        (x * x).sum(),
        h.sum(axis=0),
        (h * h).sum(axis=0),
        h.T @ x,
    )


kernels.register_backend("cpa", "numpy", accumulate=_accumulate_numpy)


class NonFiniteValuesError(ReproError):
    """NaN/Inf values reached the CPA accumulator.

    A single non-finite leakage or hypothesis value silently poisons
    every correlation downstream (the running sums all become NaN), so
    :meth:`StreamingCPA.update` rejects the block instead and names
    the offending trace indices.

    Attributes:
        which: ``"leakage"`` or ``"hypotheses"``.
        indices: offending trace indices, offset by the accumulator's
            trace count at update time (i.e. global indices for a
            single-stream consumer, segment-relative for shard
            workers).
    """

    def __init__(self, which: str, indices: np.ndarray):
        indices = np.asarray(indices, dtype=np.int64)
        shown = ", ".join(str(i) for i in indices[:8])
        if indices.size > 8:
            shown += ", ... (%d total)" % indices.size
        super().__init__(
            "non-finite %s values at trace indices [%s]" % (which, shown)
        )
        self.which = which
        self.indices = indices


@dataclass
class CPAResult:
    """Outcome of a CPA run.

    Attributes:
        checkpoints: trace counts at which correlations were evaluated.
        correlations: array (num_checkpoints, 256): Pearson correlation
            of each key candidate at each checkpoint.
        correct_key: the true key byte, if provided (for metrics).
    """

    checkpoints: np.ndarray
    correlations: np.ndarray
    correct_key: Optional[int] = None

    @property
    def final_correlations(self) -> np.ndarray:
        """|corr| of all candidates after all traces (paper's plot (a))."""
        return np.abs(self.correlations[-1])

    @property
    def best_guess(self) -> int:
        """Candidate with the highest final absolute correlation."""
        return int(np.argmax(self.final_correlations))

    def key_rank_at(self, checkpoint_index: int) -> int:
        """Rank of the correct key at a checkpoint (0 = disclosed)."""
        return int(self.key_ranks()[checkpoint_index])

    def key_ranks(self) -> np.ndarray:
        """Correct-key rank at every checkpoint.

        A checkpoint with an all-zero correlation row (degenerate
        leakage, e.g. a constant sensor bit) is reported at worst rank
        rather than the spurious rank 0 a plain comparison would give.
        """
        if self.correct_key is None:
            raise ValueError("result carries no correct key")
        corr = np.abs(self.correlations)
        correct = corr[:, self.correct_key][:, None]
        ranks = (corr > correct).sum(axis=1)
        degenerate = corr.max(axis=1) <= 0
        ranks[degenerate] = corr.shape[1] - 1
        return ranks

    def measurements_to_disclosure(self) -> Optional[int]:
        """Smallest checkpoint from which the correct key stays rank 0.

        Returns None when the key is not (stably) disclosed within the
        available traces.  This is the number the paper quotes as
        "revealed after about 150k traces".
        """
        ranks = self.key_ranks()
        disclosed_from = None
        for index in range(len(ranks) - 1, -1, -1):
            if ranks[index] == 0:
                disclosed_from = index
            else:
                break
        if disclosed_from is None:
            return None
        return int(self.checkpoints[disclosed_from])

    @property
    def disclosed(self) -> bool:
        """Whether the correct key ends at rank 0."""
        if self.correct_key is None:
            raise ValueError("result carries no correct key")
        return bool(self.key_ranks()[-1] == 0)


def default_checkpoints(num_traces: int, count: int = 60) -> np.ndarray:
    """Logarithmically spaced evaluation points up to ``num_traces``.

    The grid normally starts at 50 traces (correlations below that are
    pure noise).  For campaigns of at most 50 traces that start is
    clamped so the grid still spans ``[2, num_traces]`` ascending — a
    descending ``logspace`` would otherwise be filtered down to the
    single point ``num_traces``.
    """
    if num_traces < 2:
        raise ValueError("need at least 2 traces")
    start = min(50, num_traces)
    if start >= num_traces:
        start = 2
    points = np.unique(
        np.round(
            np.logspace(np.log10(start), np.log10(num_traces), count)
        ).astype(np.int64)
    )
    points = points[(points >= 2) & (points <= num_traces)]
    if points[-1] != num_traces:
        points = np.append(points, num_traces)
    return points


class StreamingCPA:
    """Accumulates CPA statistics over trace blocks.

    Usage: feed ``(leakage_block, hypothesis_block)`` pairs via
    :meth:`update`, call :meth:`correlations` whenever a checkpoint is
    reached.  :func:`run_cpa` wraps the common in-memory case.
    """

    def __init__(self, num_candidates: int = 256):
        self.num_candidates = num_candidates
        self.count = 0
        self._sum_x = 0.0
        self._sum_xx = 0.0
        self._sum_h = np.zeros(num_candidates)
        self._sum_hh = np.zeros(num_candidates)
        self._sum_xh = np.zeros(num_candidates)

    def update(self, leakage: np.ndarray, hypotheses: np.ndarray) -> None:
        """Add a block of traces.

        Args:
            leakage: (B,) measured leakage values.
            hypotheses: (B, num_candidates) hypothesis values.
        """
        x = np.asarray(leakage, dtype=np.float64)
        h = np.asarray(hypotheses)
        if x.ndim != 1 or h.shape != (x.shape[0], self.num_candidates):
            raise ValueError(
                "shape mismatch: leakage %r vs hypotheses %r"
                % (x.shape, h.shape)
            )
        # The fused accumulate runs under the selected kernel backend
        # (int8 hypothesis blocks skip the float64 materialization on
        # the native path).  Campaign leakage/hypotheses are
        # integer-valued, so the float64 sums are exact and therefore
        # identical across backends and accumulation orders — the same
        # property merge() relies on.
        sums = kernels.dispatch("cpa", "accumulate")(x, h)
        if sums is None:
            # Re-run the finite checks in numpy to name the offending
            # traces; the accumulator state was never touched.
            finite_x = np.isfinite(x)
            if not finite_x.all():
                raise NonFiniteValuesError(
                    "leakage", self.count + np.flatnonzero(~finite_x)
                )
            finite_h = np.isfinite(
                np.asarray(h, dtype=np.float64)
            ).all(axis=1)
            raise NonFiniteValuesError(
                "hypotheses", self.count + np.flatnonzero(~finite_h)
            )
        sum_x, sum_xx, sum_h, sum_hh, sum_xh = sums
        self.count += x.shape[0]
        self._sum_x += sum_x
        self._sum_xx += sum_xx
        self._sum_h += sum_h
        self._sum_hh += sum_hh
        self._sum_xh += sum_xh

    def merge(self, other: "StreamingCPA") -> "StreamingCPA":
        """Fold another accumulator's traces into this one (in place).

        Running sums are additive, so accumulators built over disjoint
        trace blocks — by parallel workers, checkpointed shards, or
        resumed campaigns — combine into exactly the single-stream
        state (integer-valued leakage and hypotheses make the sums
        float-exact, hence order-independent).

        Returns:
            self, for chaining.
        """
        if other.num_candidates != self.num_candidates:
            raise ValueError(
                "cannot merge %d-candidate accumulator into %d"
                % (other.num_candidates, self.num_candidates)
            )
        self.count += other.count
        self._sum_x += other._sum_x
        self._sum_xx += other._sum_xx
        self._sum_h += other._sum_h
        self._sum_hh += other._sum_hh
        self._sum_xh += other._sum_xh
        return self

    def copy(self) -> "StreamingCPA":
        """Independent snapshot of the accumulated state."""
        clone = StreamingCPA(num_candidates=self.num_candidates)
        clone.count = self.count
        clone._sum_x = self._sum_x
        clone._sum_xx = self._sum_xx
        clone._sum_h = self._sum_h.copy()
        clone._sum_hh = self._sum_hh.copy()
        clone._sum_xh = self._sum_xh.copy()
        return clone

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The running sums as plain arrays, for checkpoint files.

        The mapping round-trips bit-exactly through
        :meth:`from_state_arrays` (and through ``np.savez`` /
        ``np.load``, which preserve float64 payloads exactly), so a
        resumed campaign continues from the identical accumulator
        state an uninterrupted run would have had.
        """
        return {
            "count": np.int64(self.count),
            "sum_x": np.float64(self._sum_x),
            "sum_xx": np.float64(self._sum_xx),
            "sum_h": self._sum_h.copy(),
            "sum_hh": self._sum_hh.copy(),
            "sum_xh": self._sum_xh.copy(),
        }

    @classmethod
    def from_state_arrays(
        cls, state: Dict[str, np.ndarray]
    ) -> "StreamingCPA":
        """Rebuild an accumulator from :meth:`state_arrays` output."""
        sum_h = np.asarray(state["sum_h"], dtype=np.float64)
        engine = cls(num_candidates=int(sum_h.shape[0]))
        engine.count = int(state["count"])
        engine._sum_x = float(state["sum_x"])
        engine._sum_xx = float(state["sum_xx"])
        engine._sum_h = sum_h.copy()
        engine._sum_hh = np.asarray(
            state["sum_hh"], dtype=np.float64
        ).copy()
        engine._sum_xh = np.asarray(
            state["sum_xh"], dtype=np.float64
        ).copy()
        return engine

    def correlations(self) -> np.ndarray:
        """Pearson correlation of every candidate over all seen traces."""
        n = self.count
        if n < 2:
            return np.zeros(self.num_candidates)
        cov = self._sum_xh - self._sum_x * self._sum_h / n
        var_x = self._sum_xx - self._sum_x * self._sum_x / n
        var_h = self._sum_hh - self._sum_h * self._sum_h / n
        denom = np.sqrt(np.maximum(var_x, 0.0) * np.maximum(var_h, 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, cov / denom, 0.0)
        return corr


def run_cpa(
    leakage: np.ndarray,
    hypotheses: np.ndarray,
    checkpoints: Optional[Sequence[int]] = None,
    correct_key: Optional[int] = None,
) -> CPAResult:
    """Full CPA with progress over trace count.

    Args:
        leakage: (N,) measured leakage (Hamming weight of sensor bits,
            a single sensor bit, a TDC readout, ...).
        hypotheses: (N, 256) hypothesis matrix from
            :mod:`repro.attacks.models`.
        checkpoints: trace counts at which to record correlations;
            defaults to :func:`default_checkpoints`.  A final
            checkpoint at ``num_traces`` is always appended when
            missing, so every provided trace contributes to the result
            (traces beyond the last explicit checkpoint used to be
            silently dropped).
        correct_key: true key byte for rank/MTD metrics.

    Returns:
        :class:`CPAResult` with one correlation row per checkpoint.
    """
    x = np.asarray(leakage, dtype=np.float64)
    h = np.asarray(hypotheses)
    if x.ndim != 1:
        raise ValueError("leakage must be 1-D")
    if h.ndim != 2 or h.shape[0] != x.shape[0]:
        raise ValueError("hypotheses must be (N, num_candidates)")
    num_traces = x.shape[0]
    if checkpoints is None:
        points = default_checkpoints(num_traces)
    else:
        points = np.unique(np.asarray(checkpoints, dtype=np.int64))
        if points.size == 0 or points[0] < 2 or points[-1] > num_traces:
            raise ValueError("checkpoints must lie in [2, num_traces]")
        if points[-1] != num_traces:
            points = np.append(points, num_traces)

    engine = StreamingCPA(num_candidates=h.shape[1])
    rows: List[np.ndarray] = []
    previous = 0
    for point in points:
        engine.update(x[previous:point], h[previous:point])
        rows.append(engine.correlations())
        previous = point
    return CPAResult(
        checkpoints=points,
        correlations=np.vstack(rows),
        correct_key=correct_key,
    )

"""Key-recovery attack engines and metrics.

:func:`run_cpa` is the workhorse (textbook CPA with progress tracking,
as in all of the paper's Figs. 9–13 and 17–18); :func:`run_dpa` is the
classic difference-of-means baseline; :mod:`repro.attacks.models`
defines the hypothesis models, and :mod:`repro.attacks.metrics` the
campaign-level quality metrics.
"""

from repro.attacks.cpa import (
    CPAResult,
    NonFiniteValuesError,
    StreamingCPA,
    default_checkpoints,
    run_cpa,
)
from repro.attacks.dpa import DPAResult, run_dpa
from repro.attacks.full_key import (
    FullKeyResult,
    column_of_key_byte,
    recover_last_round_key,
)
from repro.attacks.second_order import (
    centered_square,
    run_second_order_cpa,
)
from repro.attacks.metrics import (
    AttackSummary,
    correlation_confidence,
    guessing_entropy,
    success_rate,
    summarize,
)
from repro.attacks.models import (
    DEFAULT_TARGET_BIT,
    DEFAULT_TARGET_BYTE,
    HYPOTHESIS_MODELS,
    hamming_distance_hypothesis,
    hamming_weight_hypothesis,
    inverse_sbox_intermediate,
    single_bit_hypothesis,
)

__all__ = [
    "AttackSummary",
    "CPAResult",
    "DEFAULT_TARGET_BIT",
    "DEFAULT_TARGET_BYTE",
    "DPAResult",
    "FullKeyResult",
    "NonFiniteValuesError",
    "column_of_key_byte",
    "recover_last_round_key",
    "centered_square",
    "run_second_order_cpa",
    "HYPOTHESIS_MODELS",
    "StreamingCPA",
    "correlation_confidence",
    "default_checkpoints",
    "guessing_entropy",
    "hamming_distance_hypothesis",
    "hamming_weight_hypothesis",
    "inverse_sbox_intermediate",
    "run_cpa",
    "run_dpa",
    "single_bit_hypothesis",
    "success_rate",
    "summarize",
]

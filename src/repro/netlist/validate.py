"""Structural sanity checks over netlists.

These checks are shared by tests and by the defense scanner: the
*defense* rules in :mod:`repro.defense` look for malicious structure,
whereas this module verifies that a netlist is a well-formed design at
all (no floating nets, reachable outputs, reasonable fan-in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.netlist.netlist import Netlist


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_netlist`.

    Attributes:
        warnings: non-fatal findings (e.g. dead logic).
        errors: fatal findings; empty means the netlist is clean.
    """

    warnings: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def _reachable_from_outputs(netlist: Netlist) -> Set[str]:
    """Nets in the transitive fan-in cone of any primary output."""
    seen: Set[str] = set()
    stack = list(netlist.outputs)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        gate = netlist.gate_driving(net)
        if gate is not None:
            stack.extend(gate.inputs)
    return seen


def validate_netlist(netlist: Netlist, max_fanin: int = 16) -> ValidationReport:
    """Run structural checks on a frozen netlist.

    Checks performed:

    * every primary input feeds at least one gate or output (warning),
    * every gate is in the fan-in cone of some output (warning: dead
      logic — legitimate designs may carry some, so not an error),
    * no gate exceeds ``max_fanin`` inputs (error: unmappable to LUTs),
    * netlist has at least one output (error).
    """
    report = ValidationReport()
    if not netlist.frozen:
        report.errors.append("netlist is not frozen")
        return report
    if not netlist.outputs:
        report.errors.append("netlist has no primary outputs")

    used: Set[str] = set(netlist.outputs)
    for gate in netlist.gates:
        used.update(gate.inputs)
    for net in netlist.inputs:
        if net not in used:
            report.warnings.append("unused primary input %s" % net)

    live = _reachable_from_outputs(netlist)
    dead = [g.output for g in netlist.gates if g.output not in live]
    if dead:
        report.warnings.append(
            "%d gate(s) not in any output cone (first: %s)"
            % (len(dead), dead[0])
        )

    for gate in netlist.gates:
        if len(gate.inputs) > max_fanin:
            report.errors.append(
                "gate %s has fan-in %d > %d"
                % (gate.output, len(gate.inputs), max_fanin)
            )
    return report

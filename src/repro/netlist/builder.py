"""Helper for programmatic netlist construction.

The circuit generators in :mod:`repro.circuits` build netlists from
loops over bit positions; :class:`NetlistBuilder` removes the name
bookkeeping boilerplate (fresh net names, bus expansion) they would
otherwise repeat.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netlist.netlist import Netlist


class NetlistBuilder:
    """Incremental netlist construction with automatic net naming.

    Example:
        >>> b = NetlistBuilder("half_adder")
        >>> a, c = b.inputs(["a", "c"])
        >>> s = b.gate("XOR", [a, c], hint="sum")
        >>> b.mark_outputs([s])
        >>> nl = b.build()
        >>> nl.evaluate({"a": 1, "c": 1})[s]
        0
    """

    def __init__(self, name: str):
        self._netlist = Netlist(name)
        self._counter = 0
        self._built = False

    def input(self, net: str) -> str:
        """Declare one primary input and return its name."""
        self._netlist.add_input(net)
        return net

    def inputs(self, nets: Sequence[str]) -> List[str]:
        """Declare several primary inputs."""
        return [self.input(net) for net in nets]

    def input_bus(self, prefix: str, width: int) -> List[str]:
        """Declare ``width`` inputs named ``prefix0..prefix{width-1}``.

        Index 0 is the least significant bit, matching the bit-vector
        convention of :mod:`repro.util.bits`.
        """
        return self.inputs(["%s%d" % (prefix, i) for i in range(width)])

    def fresh_name(self, hint: str = "n") -> str:
        """Generate an unused internal net name."""
        self._counter += 1
        return "%s_%d" % (hint, self._counter)

    def gate(
        self, type_name: str, inputs: Sequence[str], hint: str = "n",
        output: str = "",
    ) -> str:
        """Add a gate, auto-naming the output unless ``output`` is given.

        Returns the output net name.
        """
        net = output or self.fresh_name(hint)
        self._netlist.add_gate(net, type_name, inputs)
        return net

    def mark_outputs(self, nets: Sequence[str]) -> None:
        """Declare primary outputs in the given order."""
        for net in nets:
            self._netlist.add_output(net)

    def constant(self, value: int, any_input: str) -> str:
        """Materialize a constant 0/1 net from an existing input net.

        Netlists are purely combinational with no constant primitives,
        so constants are built as ``x XNOR x`` (1) or ``x XOR x`` (0).
        """
        if value not in (0, 1):
            raise ValueError("constant must be 0/1, got %r" % (value,))
        type_name = "XNOR" if value else "XOR"
        return self.gate(
            type_name, [any_input, any_input], hint="const%d" % value
        )

    def build(self) -> Netlist:
        """Freeze and return the netlist (single use)."""
        if self._built:
            raise RuntimeError("builder already consumed")
        self._built = True
        return self._netlist.freeze()

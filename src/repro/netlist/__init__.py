"""Gate-level netlist substrate.

Provides the netlist graph (:class:`Netlist`), the primitive gate
library, the ISCAS-85 ``.bench`` parser/writer, a construction helper,
and structural validation.  All circuit-shaped objects in this library
(the ALU, C6288, TDC delay line, ring oscillators) are expressed as
netlists from this package.
"""

from repro.netlist.bench_parser import (
    BenchParseError,
    parse_bench,
    parse_bench_file,
    write_bench,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import (
    GATE_TYPES,
    GateType,
    controlling_value,
    evaluate_gate,
    has_controlling_value,
    resolve_gate_type,
)
from repro.netlist.netlist import Gate, Netlist, NetlistError
from repro.netlist.validate import ValidationReport, validate_netlist

__all__ = [
    "BenchParseError",
    "GATE_TYPES",
    "Gate",
    "GateType",
    "Netlist",
    "NetlistBuilder",
    "NetlistError",
    "ValidationReport",
    "controlling_value",
    "evaluate_gate",
    "has_controlling_value",
    "parse_bench",
    "parse_bench_file",
    "resolve_gate_type",
    "validate_netlist",
    "write_bench",
]

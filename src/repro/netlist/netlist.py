"""Combinational netlist graph with topological evaluation.

A :class:`Netlist` is a named directed acyclic graph of primitive gates
(see :mod:`repro.netlist.gates`) between primary inputs and primary
outputs.  It is the shared representation consumed by:

* the zero-delay functional evaluator (:meth:`Netlist.evaluate`),
* the static timing analyzer (:mod:`repro.timing.sta`),
* the event-driven timed simulator (:mod:`repro.timing.event_sim`),
* the defense checker (:mod:`repro.defense`), and
* the ``.bench`` serializer (:mod:`repro.netlist.bench_parser`).

Netlists are append-only while being built and then :meth:`freeze`-d,
which validates the structure and caches the topological order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.gates import GateType, resolve_gate_type


class NetlistError(Exception):
    """Structural problem in a netlist (cycle, dangling net, ...)."""


@dataclass(frozen=True)
class Gate:
    """One gate instance: ``output = type(inputs)``.

    The output net name doubles as the gate name, matching the ISCAS-85
    ``.bench`` convention where every line defines the signal it drives.
    """

    output: str
    gate_type: GateType
    inputs: Tuple[str, ...]

    @property
    def type_name(self) -> str:
        return self.gate_type.name


class Netlist:
    """A combinational gate-level netlist.

    Args:
        name: identifier used in reports and serialized files.

    Example:
        >>> nl = Netlist("toy")
        >>> nl.add_input("a"); nl.add_input("b")
        >>> nl.add_gate("y", "XOR", ["a", "b"])
        >>> nl.add_output("y")
        >>> nl.freeze()
        >>> nl.evaluate({"a": 1, "b": 0})["y"]
        1
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("netlist name must be non-empty")
        self.name = name
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._frozen = False
        self._topo_order: Optional[List[Gate]] = None
        self._fanout: Optional[Dict[str, List[str]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _require_mutable(self) -> None:
        if self._frozen:
            raise NetlistError("netlist %s is frozen" % self.name)

    def add_input(self, net: str) -> None:
        """Declare ``net`` as a primary input."""
        self._require_mutable()
        if net in self._gates:
            raise NetlistError("net %s already driven by a gate" % net)
        if net in self._inputs:
            raise NetlistError("duplicate primary input %s" % net)
        self._inputs.append(net)

    def add_output(self, net: str) -> None:
        """Declare ``net`` as a primary output (may also feed gates)."""
        self._require_mutable()
        if net in self._outputs:
            raise NetlistError("duplicate primary output %s" % net)
        self._outputs.append(net)

    def add_gate(
        self, output: str, type_name: str, inputs: Sequence[str]
    ) -> None:
        """Add a gate driving ``output`` from ``inputs``."""
        self._require_mutable()
        gate_type = resolve_gate_type(type_name)
        gate_type.check_arity(len(inputs))
        if output in self._gates:
            raise NetlistError("net %s already driven" % output)
        if output in self._inputs:
            raise NetlistError("net %s is a primary input" % output)
        self._gates[output] = Gate(output, gate_type, tuple(inputs))

    def freeze(self, allow_cycles: bool = False) -> "Netlist":
        """Validate structure, compute topological order, lock the netlist.

        Returns ``self`` for chaining.  Raises :class:`NetlistError` on
        combinational cycles (unless ``allow_cycles``), undriven nets,
        or outputs without drivers.

        ``allow_cycles=True`` exists for *representing* malicious
        structures such as ring oscillators so the defense scanner can
        inspect them; cyclic netlists cannot be evaluated.
        """
        if self._frozen:
            return self
        driven = set(self._inputs) | set(self._gates)
        for gate in self._gates.values():
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(
                        "gate %s reads undriven net %s" % (gate.output, net)
                    )
        for net in self._outputs:
            if net not in driven:
                raise NetlistError("primary output %s is undriven" % net)
        if allow_cycles:
            try:
                self._topo_order = self._topological_order()
            except NetlistError:
                self._topo_order = None
        else:
            self._topo_order = self._topological_order()
        fanout: Dict[str, List[str]] = {net: [] for net in driven}
        for gate in self._gates.values():
            for net in gate.inputs:
                fanout[net].append(gate.output)
        self._fanout = fanout
        self._frozen = True
        return self

    def _topological_order(self) -> List[Gate]:
        """Kahn's algorithm over the gate graph; raises on cycles."""
        indegree: Dict[str, int] = {}
        for gate in self._gates.values():
            indegree[gate.output] = sum(
                1 for net in gate.inputs if net in self._gates
            )
        ready = [out for out, deg in indegree.items() if deg == 0]
        # Keep deterministic order: sort initial frontier once.
        ready.sort()
        order: List[Gate] = []
        consumers: Dict[str, List[str]] = {}
        for gate in self._gates.values():
            for net in gate.inputs:
                if net in self._gates:
                    consumers.setdefault(net, []).append(gate.output)
        while ready:
            net = ready.pop()
            order.append(self._gates[net])
            for consumer in consumers.get(net, ()):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._gates):
            remaining = sorted(set(self._gates) - {g.output for g in order})
            raise NetlistError(
                "combinational cycle involving nets: %s"
                % ", ".join(remaining[:8])
            )
        return order

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def has_cycles(self) -> bool:
        """True for a frozen netlist containing combinational loops."""
        return self._frozen and self._topo_order is None

    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary input net names in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Primary output net names in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """All gates; topological order once frozen."""
        if self._frozen and self._topo_order is not None:
            return tuple(self._topo_order)
        return tuple(self._gates.values())

    def gate_driving(self, net: str) -> Optional[Gate]:
        """The gate whose output is ``net``, or None for primary inputs."""
        return self._gates.get(net)

    def fanout_of(self, net: str) -> Tuple[str, ...]:
        """Output nets of the gates that read ``net`` (frozen only)."""
        if not self._frozen or self._fanout is None:
            raise NetlistError("fanout_of requires a frozen netlist")
        return tuple(self._fanout.get(net, ()))

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    def stats(self) -> Dict[str, int]:
        """Gate-count statistics by type plus I/O counts."""
        counts: Dict[str, int] = {}
        for gate in self._gates.values():
            counts[gate.type_name] = counts.get(gate.type_name, 0) + 1
        counts["__inputs__"] = len(self._inputs)
        counts["__outputs__"] = len(self._outputs)
        counts["__gates__"] = len(self._gates)
        return counts

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, input_values: Mapping[str, int]) -> Dict[str, int]:
        """Zero-delay functional evaluation.

        Args:
            input_values: value (0/1) for every primary input.

        Returns:
            values of **all** nets, including internal ones.
        """
        if not self._frozen or self._topo_order is None:
            raise NetlistError("evaluate requires a frozen netlist")
        values: Dict[str, int] = {}
        for net in self._inputs:
            try:
                value = input_values[net]
            except KeyError:
                raise NetlistError("missing value for input %s" % net)
            if value not in (0, 1):
                raise ValueError("input %s must be 0/1, got %r" % (net, value))
            values[net] = value
        for gate in self._topo_order:
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = gate.gate_type.evaluate(operands)
        return values

    def evaluate_outputs(
        self, input_values: Mapping[str, int]
    ) -> Dict[str, int]:
        """Like :meth:`evaluate` but restricted to primary outputs."""
        values = self.evaluate(input_values)
        return {net: values[net] for net in self._outputs}

    def logic_depth(self) -> Dict[str, int]:
        """Gate-count depth of every net (inputs have depth 0)."""
        if not self._frozen or self._topo_order is None:
            raise NetlistError("logic_depth requires a frozen netlist")
        depth: Dict[str, int] = {net: 0 for net in self._inputs}
        for gate in self._topo_order:
            depth[gate.output] = 1 + max(
                (depth[net] for net in gate.inputs), default=0
            )
        return depth

    def __repr__(self) -> str:
        return "Netlist(%r, inputs=%d, outputs=%d, gates=%d)" % (
            self.name,
            len(self._inputs),
            len(self._outputs),
            len(self._gates),
        )

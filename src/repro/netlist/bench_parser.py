"""ISCAS-85 ``.bench`` format reader and writer.

The ISCAS-85 benchmark circuits (including C6288, the multiplier the
paper misuses as a sensor) are traditionally distributed in the
``.bench`` netlist format::

    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

This module converts between that format and :class:`repro.netlist.Netlist`.
The subset implemented covers the full ISCAS-85 suite: ``INPUT``/``OUTPUT``
declarations, gate assignments with the gate types known to
:mod:`repro.netlist.gates`, comments (``#``), and blank lines.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

from repro.netlist.netlist import Netlist, NetlistError

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z][A-Za-z0-9]*)\s*\(\s*([^)]*?)\s*\)$"
)


class BenchParseError(Exception):
    """Raised on malformed ``.bench`` input, with line information."""

    def __init__(self, line_number: int, line: str, reason: str):
        self.line_number = line_number
        self.line = line
        self.reason = reason
        super().__init__(
            "line %d: %s (in %r)" % (line_number, reason, line.strip())
        )


def _logical_lines(text: str) -> Iterable[Tuple[int, str]]:
    """Yield (line_number, stripped_content) skipping blanks/comments."""
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            yield number, line


def parse_bench(
    text: str, name: str = "bench", allow_cycles: bool = False
) -> Netlist:
    """Parse ``.bench`` text into a frozen :class:`Netlist`.

    Args:
        text: file contents.
        name: name given to the resulting netlist.
        allow_cycles: accept combinational loops (needed when loading
            untrusted designs for the defense scanner — a ring
            oscillator is malformed but must still be *representable*).

    Raises:
        BenchParseError: on syntax errors.
        NetlistError: on structural errors (cycles unless allowed,
            duplicate drivers...).
    """
    netlist = Netlist(name)
    pending_outputs: List[str] = []
    for number, line in _logical_lines(text):
        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            if kind == "INPUT":
                netlist.add_input(net)
            else:
                pending_outputs.append(net)
            continue
        gate = _GATE_RE.match(line)
        if gate:
            output, type_name, operand_text = gate.groups()
            operands = [
                token.strip()
                for token in operand_text.split(",")
                if token.strip()
            ]
            if not operands:
                raise BenchParseError(number, line, "gate with no inputs")
            try:
                netlist.add_gate(output, type_name, operands)
            except (KeyError, ValueError) as exc:
                raise BenchParseError(number, line, str(exc)) from exc
            continue
        raise BenchParseError(number, line, "unrecognized statement")
    for net in pending_outputs:
        netlist.add_output(net)
    return netlist.freeze(allow_cycles=allow_cycles)


def parse_bench_file(
    path: str, name: str = "", allow_cycles: bool = False
) -> Netlist:
    """Parse a ``.bench`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_bench(text, name or path, allow_cycles=allow_cycles)


def write_bench(netlist: Netlist, header: str = "") -> str:
    """Serialize a netlist to ``.bench`` text.

    The output round-trips through :func:`parse_bench` to an equivalent
    netlist (same I/O, same gates, topological order preserved).
    """
    lines: List[str] = []
    if header:
        for header_line in header.splitlines():
            lines.append("# %s" % header_line)
    lines.append("# netlist: %s" % netlist.name)
    for net in netlist.inputs:
        lines.append("INPUT(%s)" % net)
    for net in netlist.outputs:
        lines.append("OUTPUT(%s)" % net)
    for gate in netlist.gates:
        lines.append(
            "%s = %s(%s)"
            % (gate.output, gate.type_name, ", ".join(gate.inputs))
        )
    return "\n".join(lines) + "\n"

"""Primitive gate library for the gate-level netlist substrate.

The library covers everything needed by the benign circuits of the paper
(ripple-carry adder ALU, ISCAS-85 C6288 multiplier) and by the reference
sensors (buffers for TDC delay lines, inverters for ring oscillators).

Each :class:`GateType` carries:

* a boolean evaluation function over its input values,
* a nominal propagation delay in picoseconds at the nominal supply
  voltage (loosely modeled on a 28 nm FPGA LUT/carry primitive), used by
  the timing substrate, and
* the permitted input arity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Callable, Dict, Sequence, Tuple


def _and(inputs: Sequence[int]) -> int:
    return int(all(inputs))


def _or(inputs: Sequence[int]) -> int:
    return int(any(inputs))


def _nand(inputs: Sequence[int]) -> int:
    return int(not all(inputs))


def _nor(inputs: Sequence[int]) -> int:
    return int(not any(inputs))


def _xor(inputs: Sequence[int]) -> int:
    return reduce(lambda a, b: a ^ b, inputs, 0)


def _xnor(inputs: Sequence[int]) -> int:
    return 1 - _xor(inputs)


def _buf(inputs: Sequence[int]) -> int:
    return int(inputs[0])


def _not(inputs: Sequence[int]) -> int:
    return 1 - int(inputs[0])


def _mux(inputs: Sequence[int]) -> int:
    # inputs: (select, a, b) -> a if select == 0 else b
    select, a, b = inputs
    return int(b if select else a)


@dataclass(frozen=True)
class GateType:
    """Immutable description of a primitive gate type.

    Attributes:
        name: canonical upper-case type name (``"NAND"`` ...).
        evaluate: boolean function from input tuple to 0/1.
        nominal_delay_ps: propagation delay at nominal voltage.
        min_inputs: minimum permitted fan-in.
        max_inputs: maximum permitted fan-in (``None`` = unbounded).
    """

    name: str
    evaluate: Callable[[Sequence[int]], int]
    nominal_delay_ps: float
    min_inputs: int
    max_inputs: int

    def check_arity(self, count: int) -> None:
        """Raise :class:`ValueError` when ``count`` inputs are invalid."""
        if count < self.min_inputs or count > self.max_inputs:
            raise ValueError(
                "gate type %s accepts %d..%d inputs, got %d"
                % (self.name, self.min_inputs, self.max_inputs, count)
            )


_MANY = 64

#: Registry of supported gate types, keyed by canonical name.
GATE_TYPES: Dict[str, GateType] = {
    gt.name: gt
    for gt in (
        GateType("AND", _and, 90.0, 2, _MANY),
        GateType("OR", _or, 90.0, 2, _MANY),
        GateType("NAND", _nand, 70.0, 2, _MANY),
        GateType("NOR", _nor, 75.0, 2, _MANY),
        GateType("XOR", _xor, 120.0, 2, _MANY),
        GateType("XNOR", _xnor, 120.0, 2, _MANY),
        GateType("BUF", _buf, 60.0, 1, 1),
        GateType("NOT", _not, 45.0, 1, 1),
        GateType("MUX", _mux, 110.0, 3, 3),
    )
}

#: Aliases accepted by the parser and builders.
GATE_ALIASES: Dict[str, str] = {
    "BUFF": "BUF",
    "INV": "NOT",
    "MUX2": "MUX",
}


def resolve_gate_type(name: str) -> GateType:
    """Look up a gate type by name or alias (case-insensitive).

    >>> resolve_gate_type("buff").name
    'BUF'
    """
    canonical = name.strip().upper()
    canonical = GATE_ALIASES.get(canonical, canonical)
    try:
        return GATE_TYPES[canonical]
    except KeyError:
        raise KeyError(
            "unknown gate type %r (known: %s)"
            % (name, ", ".join(sorted(GATE_TYPES)))
        ) from None


def evaluate_gate(type_name: str, inputs: Sequence[int]) -> int:
    """Evaluate a gate by type name on concrete 0/1 inputs."""
    gate_type = resolve_gate_type(type_name)
    gate_type.check_arity(len(inputs))
    for value in inputs:
        if value not in (0, 1):
            raise ValueError("gate inputs must be 0/1, got %r" % (value,))
    return gate_type.evaluate(tuple(inputs))


def controlling_value(type_name: str) -> Tuple[int, int]:
    """Return ``(controlling input, forced output)`` for a gate type.

    A *controlling* value on any input forces the gate output regardless
    of other inputs (e.g. 0 for AND forces output 0).  Used by the
    ATPG-style path sensitization search.  Raises :class:`ValueError`
    for gate types without a controlling value (XOR/XNOR/BUF/NOT/MUX).
    """
    canonical = resolve_gate_type(type_name).name
    table = {
        "AND": (0, 0),
        "NAND": (0, 1),
        "OR": (1, 1),
        "NOR": (1, 0),
    }
    if canonical not in table:
        raise ValueError("gate type %s has no controlling value" % canonical)
    return table[canonical]


def has_controlling_value(type_name: str) -> bool:
    """Whether :func:`controlling_value` is defined for this type."""
    return resolve_gate_type(type_name).name in ("AND", "NAND", "OR", "NOR")

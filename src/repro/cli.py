"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``census <circuit>`` — run the sensitive-bit characterization
  (Figs. 7/15) and print the census plus the variance ranking.
* ``attack <circuit>`` — run the end-to-end CPA key recovery.
* ``fullkey`` — recover all 16 key bytes with the ALU sensor.
* ``scan <design>`` — bitstream-check a design (``alu``, ``c6288``,
  ``tdc``, ``ro``, or a ``.bench`` file path).
* ``timing <circuit> <mhz>`` — strict timing check of a clock request.
* ``floorplan <circuit>`` — render the Figs. 3/4 floorplan.
* ``covert`` — run the covert-channel demonstration.
* ``report`` — regenerate the paper-vs-measured figure table.
* ``bench`` — performance snapshot: ``--suite sampling`` (default)
  measures sensor sampling + the sharded campaign driver and writes
  ``BENCH_sampling.json``; ``--suite e2e`` measures the batched
  end-to-end trace-generation pipeline (AES datapath + PDN IIR +
  process sharding) and writes ``BENCH_e2e.json``; ``--suite kernels``
  compares every available backend (numpy/scipy/native) of the three
  hot kernels and writes ``BENCH_kernels.json``; ``--suite fleet``
  measures distributed campaign dispatch over 1 vs N loopback workers
  (bit-identity asserted before any timing) and writes
  ``BENCH_fleet.json``; ``--suite chaos`` runs the deterministic
  durability drill — SIGKILL the server mid-campaign at a journaled
  barrier, restart it on the same journal, and assert the recovered
  results are byte-identical to undisturbed runs — and writes
  ``BENCH_chaos.json``.  All records embed host metadata
  (python/numpy/scipy versions, CPU count, platform, executor backend,
  resolved kernel-backend map, native provider, numba version) so
  snapshots from different machines compare honestly.
* ``serve`` — run the campaign job service: an asyncio scheduler with
  a bounded priority queue, request batching, in-flight dedupe, a
  content-addressed result cache (optionally LRU-bounded with
  ``--cache-max-bytes``), and a fleet coordinator that dispatches
  shard leases to connected workers, spoken over JSON lines on TCP.
  With ``--journal-dir`` every job-lifecycle transition is written to
  a fsync'd write-ahead journal; a SIGKILL'd server replays it on
  restart and finishes every unfinished job bit-identically.
* ``worker`` — join a running service as a fleet worker: register
  capabilities (CPUs, slots, kernel backends, warm cache keys), pull
  shard leases, and execute them through the local zero-copy pool.
  ``--reconnect`` keeps redialing a lost (or restarting) server with
  seeded exponential backoff instead of exiting.
* ``submit`` — send one job (``tracegen``/``attack``/``fullkey``/
  ``report``) to a running service, stream its progress events, and
  print the result summary (bit-identical to the direct command).
  ``--param fleet=true`` requires fleet execution; by default
  attack/fullkey jobs use the fleet whenever workers are connected.
* ``attach JOB_ID`` — re-subscribe to a submitted job: replay its
  full event history (surviving client disconnects and journaled
  server restarts) and print the same summary ``submit`` would.
* ``jobs`` — list a running service's jobs (with the journal/recovery
  counters), or ``--metrics`` for the live counters/gauges/latency
  histograms.

Parallel commands accept ``--workers N`` and ``--executor
{thread,process}``; results are bit-identical across backends and
worker counts.  The campaign and bench commands also accept
``--kernels {auto,numpy,scipy,native}`` (or a per-kernel map like
``aes=native,pdn=scipy``) selecting the compiled-kernel backends —
bit-identical by contract.  Invalid values (``--workers 0``, an
unknown executor or kernels name, ``native`` on a host without numba
or a C compiler) exit with code 2 and one actionable line, not a
traceback.  The campaign commands (``attack``, ``fullkey``) also
take fault-tolerance flags — ``--checkpoint PATH``,
``--checkpoint-every K``, ``--resume``, ``--retries N``,
``--task-timeout S`` — and ``report`` supports figure-granular
``--checkpoint``/``--resume``; a resumed campaign is bit-identical to
an uninterrupted one.  Structured failures exit with code 2 and one
actionable line on stderr (plus a resume hint when a checkpoint
exists) instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_executor_argument(parser) -> None:
    # No argparse choices= here: executor names are validated in
    # _validate_parallel_args so a typo gets the same one-line exit-2
    # treatment as every other structured failure.
    parser.add_argument(
        "--executor",
        default=None,
        metavar="{thread,process}",
        help="worker-pool backend (default: thread)",
    )


def _add_kernels_argument(parser) -> None:
    # Validated like --executor: unknown modes and unavailable native
    # backends surface as one-line exit-2 ReproErrors, not tracebacks.
    parser.add_argument(
        "--kernels",
        default=None,
        metavar="{auto,numpy,native}",
        help="kernel backend selection: auto (default), numpy, scipy, "
        "native, or a per-kernel map like aes=native,pdn=scipy",
    )


def _validate_parallel_args(args) -> None:
    """Reject bad --workers/--executor values with a ReproError.

    Argparse would answer with a usage dump and exit code 2 of its
    own; routing through :class:`ReproError` instead gives the same
    one-actionable-line contract as every campaign failure.
    """
    from repro.util.errors import ReproError
    from repro.util.executors import EXECUTOR_KINDS

    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        raise ReproError(
            "--workers must be >= 1 (got %d); use --workers 1 for a "
            "serial run" % workers
        )
    executor = getattr(args, "executor", None)
    if executor is not None and executor not in EXECUTOR_KINDS:
        raise ReproError(
            "unknown --executor %r (expected one of %s)"
            % (executor, ", ".join(EXECUTOR_KINDS))
        )
    spec = getattr(args, "kernels", None)
    if spec is not None:
        from repro.util import kernels

        # parse_spec raises KernelConfigError (a ReproError) on an
        # unknown mode/kernel; resolving eagerly raises
        # KernelUnavailableError naming the missing dependency when
        # native is requested on a host that cannot serve it.
        kernels.parse_spec(spec)
        with kernels.use(spec):
            pass


def _add_acquisition_arguments(parser) -> None:
    """Acquisition-realism and preprocessing flags (campaign commands).

    Values are parsed eagerly in :func:`_acquisition_params`, so a
    malformed spec exits 2 with one actionable line before any
    campaign work starts.
    """
    parser.add_argument(
        "--jitter", default=None, metavar="SPEC",
        help="simulate acquisition misalignment, e.g. uniform:3 or "
        "gaussian:1.5,drift=0.002,glitch=0.01",
    )
    parser.add_argument(
        "--align", default=None, metavar="METHOD[:MAX_SHIFT]",
        help="re-align traces before the CPA: correlation or sad, "
        "e.g. correlation:4",
    )
    parser.add_argument(
        "--poi", default=None, metavar="METHOD[:N[@PILOTS]]",
        help="point-of-interest selection per target column: "
        "variance or sost, e.g. sost:3@512",
    )
    parser.add_argument(
        "--window", default=None, metavar="START:END",
        help="static sample-window crop before the CPA",
    )
    parser.add_argument(
        "--resample", default=None, metavar="UP/DOWN",
        help="polyphase rational resampling, e.g. 3/2",
    )


def _acquisition_params(args) -> dict:
    """Validated ``jitter``/``preprocess`` campaign-param entries.

    Entries appear only when a flag was given (a disabled spec like
    ``--jitter none`` also stays absent), so acquisition-free
    invocations keep their parameter dicts — and service cache keys —
    byte-identical to before these flags existed.
    """
    from repro.preprocess.spec import (
        MisalignmentSpec,
        preprocess_spec_from_cli,
    )

    params = {}
    jitter = getattr(args, "jitter", None)
    if jitter is not None:
        spec = MisalignmentSpec.from_string(jitter)
        if spec.enabled:
            params["jitter"] = spec.to_string()
    preprocess = preprocess_spec_from_cli(
        align=getattr(args, "align", None),
        poi=getattr(args, "poi", None),
        window=getattr(args, "window", None),
        resample=getattr(args, "resample", None),
    )
    if preprocess is not None and preprocess.enabled:
        params["preprocess"] = preprocess.to_string()
    return params


def _add_resilience_arguments(parser) -> None:
    """Fault-tolerance knobs shared by the campaign commands."""
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a crash-safe checkpoint here as shards complete",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="shards per checkpoint (default: the worker count)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue from --checkpoint if it exists "
        "(bit-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per shard before degrading the backend "
        "(default: 3 when any resilience flag is set)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard deadline; a hung shard is abandoned and "
        "retried",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Stealthy logic misuse for power analysis attacks in "
            "multi-tenant FPGAs (DATE 2021) - reproduction toolkit"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="experiment seed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    census = sub.add_parser("census", help="sensitive-bit census")
    census.add_argument("circuit", choices=["alu", "c6288", "c6288x2"])

    attack = sub.add_parser("attack", help="CPA key-byte recovery")
    attack.add_argument("circuit", choices=["alu", "c6288", "c6288x2"])
    attack.add_argument("--traces", type=int, default=150_000)
    attack.add_argument(
        "--reduction",
        choices=["hamming_weight", "single_bit"],
        default="hamming_weight",
    )
    attack.add_argument(
        "--workers", type=int, default=None,
        help="workers for the sharded driver (1 = serial)",
    )
    _add_executor_argument(attack)
    _add_kernels_argument(attack)
    _add_acquisition_arguments(attack)
    _add_resilience_arguments(attack)

    fullkey = sub.add_parser("fullkey", help="recover all 16 key bytes")
    fullkey.add_argument("--traces", type=int, default=250_000)
    fullkey.add_argument(
        "--workers", type=int, default=None,
        help="workers for collection and per-byte CPAs",
    )
    _add_executor_argument(fullkey)
    _add_kernels_argument(fullkey)
    _add_acquisition_arguments(fullkey)
    _add_resilience_arguments(fullkey)

    scan = sub.add_parser("scan", help="bitstream-check a design")
    scan.add_argument(
        "design",
        help="alu | c6288 | tdc | ro | path to a .bench file",
    )

    timing = sub.add_parser("timing", help="strict timing check")
    timing.add_argument("circuit", choices=["alu", "c6288"])
    timing.add_argument("mhz", type=float)

    floorplan = sub.add_parser("floorplan", help="render a floorplan")
    floorplan.add_argument("circuit", choices=["alu", "c6288x2"])

    covert = sub.add_parser("covert", help="covert-channel demo")
    covert.add_argument("--rate-mbps", type=float, default=1.0)
    covert.add_argument("--bits", type=int, default=64)

    report = sub.add_parser("report", help="paper-vs-measured table")
    report.add_argument("--traces", type=int, default=500_000)
    report.add_argument(
        "--no-cpa", action="store_true",
        help="skip the CPA campaigns (fast)",
    )
    report.add_argument(
        "--workers", type=int, default=None,
        help="workers for the sharded CPA figures",
    )
    _add_executor_argument(report)
    _add_kernels_argument(report)
    _add_acquisition_arguments(report)
    report.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="JSON checkpoint updated after every completed figure",
    )
    report.add_argument(
        "--resume", action="store_true",
        help="skip figures already recorded in --checkpoint",
    )

    bench = sub.add_parser(
        "bench", help="sampling/campaign or e2e performance snapshot"
    )
    bench.add_argument(
        "--suite",
        choices=["sampling", "e2e", "kernels", "fleet", "chaos",
                 "preprocess"],
        default="sampling",
        help="sampling: sensor kernels + sharded campaign; "
        "e2e: batched trace-generation pipeline; "
        "kernels: per-backend AES/PDN/CPA kernel comparison; "
        "fleet: distributed dispatch over 1 vs N loopback workers; "
        "chaos: kill the journaled server mid-campaign and assert "
        "bit-identical recovery; "
        "preprocess: alignment throughput + attack success vs "
        "misalignment severity, with and without alignment",
    )
    bench.add_argument("--cycles", type=int, default=100_000)
    bench.add_argument("--traces", type=int, default=100_000)
    bench.add_argument(
        "--gen-traces", type=int, default=4000,
        help="traces per e2e trace-generation measurement",
    )
    bench.add_argument(
        "--circuit", default="alu", choices=["alu", "c6288", "c6288x2"]
    )
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--workers", type=int, default=None)
    _add_executor_argument(bench)
    _add_kernels_argument(bench)
    bench.add_argument(
        "--output", default=None,
        help="where to write the JSON record (default: "
        "BENCH_<suite>.json)",
    )

    def _add_endpoint_arguments(p) -> None:
        p.add_argument(
            "--host", default="127.0.0.1",
            help="service address (default: 127.0.0.1)",
        )
        p.add_argument(
            "--port", type=int, default=7341,
            help="service port (default: 7341)",
        )

    serve = sub.add_parser(
        "serve", help="run the campaign job service"
    )
    _add_endpoint_arguments(serve)
    serve.add_argument(
        "--max-concurrency", type=int, default=2, metavar="N",
        help="jobs executing at once (default: 2)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64, metavar="N",
        help="bounded queue capacity; beyond it submissions are "
        "rejected (default: 64)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.05, metavar="SECONDS",
        help="how long a trace-generation batch collects compatible "
        "requests (default: 0.05; 0 disables coalescing)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the content-addressed result cache here",
    )
    serve.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="campaign checkpoint directory (jobs resume after a "
        "crash)",
    )
    serve.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="BYTES",
        help="LRU cap on the on-disk result cache (default: unbounded)",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=10.0,
        metavar="SECONDS",
        help="drop a fleet worker silent this long; its leases are "
        "reassigned (default: 10)",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=None, metavar="SECONDS",
        help="revoke and reassign a shard lease running this long "
        "(default: no per-lease deadline)",
    )
    serve.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="write-ahead job journal directory; on restart the "
        "server replays it and finishes every unfinished job "
        "bit-identically (two servers must not share one)",
    )
    serve.add_argument(
        "--fleet-grace", type=float, default=5.0, metavar="SECONDS",
        help="how long a fleet-required job waits for workers to "
        "(re)connect before failing — covers workers redialing a "
        "restarted server (default: 5)",
    )
    serve.add_argument(
        "--quarantine-after", type=int, default=2, metavar="N",
        help="quarantine a shard after it errors on this many "
        "distinct workers and fail its job fast (default: 2)",
    )

    worker = sub.add_parser(
        "worker", help="join a running service as a fleet worker"
    )
    worker.add_argument(
        "address", metavar="HOST:PORT",
        help="fleet server address (bare PORT means 127.0.0.1)",
    )
    worker.add_argument(
        "--name", default=None,
        help="worker name in logs and placement events "
        "(default: worker-<pid>)",
    )
    worker.add_argument(
        "--slots", type=int, default=1, metavar="N",
        help="concurrent shard leases this worker serves (default: 1)",
    )
    worker.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="local pool size per lease (default: usable CPUs)",
    )
    _add_executor_argument(worker)
    worker.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory whose keys are advertised as "
        "warm for cache-aware placement",
    )
    worker.add_argument(
        "--quiet", action="store_true",
        help="suppress per-lease log lines",
    )
    worker.add_argument(
        "--reconnect", action="store_true",
        help="redial a lost (or restarting) server with seeded "
        "exponential backoff instead of exiting",
    )
    worker.add_argument(
        "--max-reconnects", type=int, default=10, metavar="N",
        help="consecutive failed redials before giving up "
        "(default: 10)",
    )

    submit = sub.add_parser(
        "submit", help="submit one job to a running service"
    )
    submit.add_argument(
        "kind", choices=["tracegen", "attack", "fullkey", "report"]
    )
    _add_endpoint_arguments(submit)
    submit.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="job parameter (repeatable), e.g. --param traces=5000 "
        "--param circuit=alu",
    )
    submit.add_argument(
        "--priority", type=int, default=10,
        help="smaller runs sooner (default: 10)",
    )
    submit.add_argument(
        "--quiet", action="store_true",
        help="suppress streamed progress events",
    )

    attach = sub.add_parser(
        "attach", help="re-subscribe to a submitted job by id"
    )
    attach.add_argument(
        "job_id", metavar="JOB_ID",
        help="job id printed by `repro submit` / `repro jobs`",
    )
    _add_endpoint_arguments(attach)
    attach.add_argument(
        "--quiet", action="store_true",
        help="suppress replayed/streamed progress events",
    )
    attach.add_argument(
        "--no-result", action="store_true",
        help="skip fetching the result payload (status only)",
    )

    jobs = sub.add_parser(
        "jobs", help="list a running service's jobs"
    )
    _add_endpoint_arguments(jobs)
    jobs.add_argument(
        "--metrics", action="store_true",
        help="print the metrics snapshot instead of the job table",
    )
    return parser


def _cmd_census(args) -> int:
    from repro.experiments import ExperimentConfig, ExperimentSetup

    setup = ExperimentSetup(ExperimentConfig(seed=args.seed))
    characterization = setup.characterization(args.circuit)
    print("census:", characterization.census.summary())
    ranking = characterization.bit_response_correlations()
    top = np.argsort(-ranking)[:8]
    print("top endpoints by voltage coupling:")
    for bit in top:
        print("  bit %3d  rho=%.3f" % (bit, ranking[bit]))
    return 0


def _campaign_params(args, **extra) -> dict:
    """Service-schema parameter dict for a campaign command.

    The CLI executes through the same runners the campaign service
    uses (:mod:`repro.service.runners`), so a direct run and a
    service-submitted job are the same code path — bit-identity by
    construction rather than by parallel maintenance.
    """
    params = {
        "traces": args.traces,
        "seed": args.seed,
        "workers": args.workers,
        "executor": args.executor,
        "kernels": getattr(args, "kernels", None),
    }
    if hasattr(args, "retries"):
        params["retries"] = args.retries
        params["task_timeout"] = args.task_timeout
    params.update(_acquisition_params(args))
    params.update(extra)
    return params


def _cmd_attack(args) -> int:
    from repro.experiments import ExperimentConfig, describe_mtd
    from repro.service.runners import cached_setup, run_attack
    from repro.util.executors import CampaignHealth

    health = CampaignHealth()
    result = run_attack(
        _campaign_params(
            args, circuit=args.circuit, reduction=args.reduction
        ),
        health=health,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    if health.attempts and not health.healthy:
        print("campaign health:", health.summary())
    setup = cached_setup(
        ExperimentConfig(
            seed=args.seed,
            num_traces=args.traces,
            max_workers=args.workers,
            executor=args.executor,
        )
    )
    correct = setup.cipher.last_round_key[setup.config.target_byte]
    print(
        "best guess 0x%02X (true 0x%02X), rank %d, %s"
        % (
            result.best_guess,
            correct,
            result.key_ranks()[-1],
            describe_mtd(result.measurements_to_disclosure()),
        )
    )
    return 0 if result.disclosed else 1


def _cmd_fullkey(args) -> int:
    from repro.service.runners import run_fullkey
    from repro.util.executors import CampaignHealth

    health = CampaignHealth()
    result = run_fullkey(
        _campaign_params(args),
        health=health,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    if health.attempts and not health.healthy:
        print("campaign health:", health.summary())
    print(
        "correct bytes %d/16, residual enumeration 2^%.1f"
        % (result.num_correct_bytes, result.log2_remaining_enumeration())
    )
    if result.full_key_recovered:
        print("master key:", result.recovered_master_key.hex())
        return 0
    return 1


def _cmd_scan(args) -> int:
    from repro.circuits import build_alu, build_c6288
    from repro.defense import BitstreamChecker
    from repro.netlist import parse_bench_file
    from repro.sensors import build_ro_netlist, build_tdc_netlist

    builders = {
        "alu": build_alu,
        "c6288": build_c6288,
        "tdc": build_tdc_netlist,
        "ro": build_ro_netlist,
    }
    if args.design in builders:
        netlist = builders[args.design]()
    else:
        netlist = parse_bench_file(args.design, allow_cycles=True)
    report = BitstreamChecker().scan(netlist)
    print(report.summary())
    return 0 if report.accepted else 1


def _cmd_timing(args) -> int:
    from repro.circuits import build_alu, build_c6288
    from repro.defense import strict_timing_check
    from repro.timing import fpga_annotate

    netlist = build_alu() if args.circuit == "alu" else build_c6288()
    report = strict_timing_check(fpga_annotate(netlist), args.mhz)
    print(report.summary())
    return 0 if report.accepted else 1


def _cmd_floorplan(args) -> int:
    from repro.experiments import (
        ExperimentConfig,
        ExperimentSetup,
        fig03_04_floorplan,
    )

    setup = ExperimentSetup(ExperimentConfig(seed=args.seed))
    print(fig03_04_floorplan(setup, args.circuit)["rendered"])
    return 0


def _cmd_covert(args) -> int:
    from repro.core import BenignSensor, OOKModulation, run_covert_channel

    symbol_samples = max(2, int(round(150.0 / args.rate_mbps)))
    modulation = OOKModulation(
        symbol_samples=symbol_samples,
        settle_samples=min(20, max(0, symbol_samples // 4)),
    )
    sensor = BenignSensor.from_name("alu")
    rng = np.random.default_rng(args.seed)
    payload = rng.integers(0, 2, args.bits).tolist()
    result = run_covert_channel(sensor, payload, modulation, seed=args.seed)
    print(
        "%.2f Mbit/s: BER %.3f (%d/%d bit errors)"
        % (
            result.bits_per_second / 1e6,
            result.bit_error_rate,
            result.bit_errors,
            len(payload),
        )
    )
    return 0 if result.bit_error_rate < 0.05 else 1


def _cmd_report(args) -> int:
    from repro.experiments.runner import render_report
    from repro.service.runners import run_report

    params = {
        "traces": args.traces,
        "seed": args.seed,
        "cpa": not args.no_cpa,
        "workers": args.workers,
        "executor": args.executor,
        "kernels": args.kernels,
    }
    params.update(_acquisition_params(args))
    records = run_report(
        params,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
    )
    print(render_report(records))
    return 0 if all(record.ok for record in records) else 1


def _cmd_bench(args) -> int:
    import json

    from repro.util import kernels

    # One-line availability/selection report (which backend each
    # kernel resolved to, what serves "native", numba version).
    print(kernels.describe())
    if args.suite == "kernels":
        from repro.experiments.benchmark import write_kernels_benchmark

        record = write_kernels_benchmark(
            args.output or "BENCH_kernels.json",
            repeats=args.repeats,
            seed=args.seed,
        )
    elif args.suite == "fleet":
        from repro.experiments.benchmark import write_fleet_benchmark

        record = write_fleet_benchmark(
            args.output or "BENCH_fleet.json",
            traces=args.traces,
            repeats=args.repeats,
            seed=args.seed,
        )
    elif args.suite == "chaos":
        from repro.experiments.benchmark import write_chaos_benchmark

        record = write_chaos_benchmark(
            args.output or "BENCH_chaos.json",
            traces=args.traces,
            seed=args.seed,
        )
    elif args.suite == "preprocess":
        from repro.experiments.benchmark import (
            write_preprocess_benchmark,
        )

        record = write_preprocess_benchmark(
            args.output or "BENCH_preprocess.json",
            repeats=args.repeats,
            max_workers=args.workers,
            seed=args.seed,
        )
    elif args.suite == "e2e":
        from repro.experiments.benchmark import write_e2e_benchmark

        record = write_e2e_benchmark(
            args.output or "BENCH_e2e.json",
            gen_traces=args.gen_traces,
            campaign_traces=args.traces,
            circuit=args.circuit,
            repeats=args.repeats,
            max_workers=args.workers,
            executor=args.executor,
            seed=args.seed,
        )
    else:
        from repro.experiments.benchmark import write_sampling_benchmark

        record = write_sampling_benchmark(
            args.output or "BENCH_sampling.json",
            num_cycles=args.cycles,
            circuit=args.circuit,
            campaign_traces=args.traces,
            repeats=args.repeats,
            max_workers=args.workers,
            seed=args.seed,
        )
    print(json.dumps(record, indent=2))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.fleet import FleetConfig
    from repro.service.scheduler import (
        CampaignScheduler,
        SchedulerConfig,
    )
    from repro.service.server import serve_forever

    scheduler = CampaignScheduler(
        SchedulerConfig(
            max_concurrency=args.max_concurrency,
            queue_size=args.queue_size,
            batch_window_s=args.batch_window,
            cache_dir=args.cache_dir,
            cache_max_bytes=args.cache_max_bytes,
            spool_dir=args.spool_dir,
            journal_dir=args.journal_dir,
        ),
        fleet_config=FleetConfig(
            heartbeat_timeout_s=args.heartbeat_timeout,
            lease_timeout_s=args.lease_timeout,
            register_grace_s=args.fleet_grace,
            quarantine_after=args.quarantine_after,
        ),
    )
    asyncio.run(serve_forever(scheduler, args.host, args.port))
    return 0


def _cmd_worker(args) -> int:
    from repro.service.worker import run_worker

    run_worker(
        args.address,
        name=args.name,
        slots=args.slots,
        local_workers=args.workers,
        executor=args.executor,
        cache_dir=args.cache_dir,
        quiet=args.quiet,
        reconnect=args.reconnect,
        max_reconnects=args.max_reconnects,
    )
    return 0


def _parse_job_params(pairs) -> dict:
    """``NAME=VALUE`` pairs into a parameter dict (values via JSON)."""
    import json

    from repro.util.errors import ReproError

    params = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            raise ReproError(
                "bad --param %r (expected NAME=VALUE)" % pair
            )
        try:
            params[name] = json.loads(raw)
        except ValueError:
            params[name] = raw  # bare strings: circuit=alu
    return params


def _summarize_job_result(payload) -> None:
    """Print the same summary line the direct command would."""
    from repro.experiments import describe_mtd
    from repro.experiments.runner import render_report
    from repro.service.codec import from_payload

    result = from_payload(payload)
    kind = payload.get("type")
    if kind == "tracegen":
        print(
            "traces: %d x %d samples"
            % result["voltages"].shape
        )
    elif kind == "cpa":
        print(
            "best guess 0x%02X, rank %d, %s"
            % (
                result.best_guess,
                result.key_ranks()[-1],
                describe_mtd(result.measurements_to_disclosure()),
            )
        )
    elif kind == "fullkey":
        print(
            "correct bytes %d/16, residual enumeration 2^%.1f"
            % (
                result.num_correct_bytes,
                result.log2_remaining_enumeration(),
            )
        )
        if result.full_key_recovered:
            print("master key:", result.recovered_master_key.hex())
    elif kind == "report":
        print(render_report(result))


def _print_event(event) -> None:
    """One progress-event line (shared by ``submit`` and ``attach``)."""
    detail = ", ".join(
        "%s=%s" % (key, value)
        for key, value in sorted(event.items())
        if key not in ("event", "job_id", "time")
        and value is not None
    )
    print(
        "[%s] %s%s"
        % (
            event.get("job_id"),
            event.get("event"),
            " (%s)" % detail if detail else "",
        )
    )


def _finish_job(job) -> int:
    """Terminal-status report shared by ``submit`` and ``attach``."""
    status = job.get("status")
    if status != "done":
        print(
            "job %s %s: %s"
            % (job.get("job_id"), status, job.get("error")),
            file=sys.stderr,
        )
        return 1
    source = job.get("cache") or "computed"
    print(
        "job %s done (source: %s, batch of %d)"
        % (job.get("job_id"), source, job.get("batch_size", 1))
    )
    if job.get("result"):
        _summarize_job_result(job["result"])
    return 0


def _cmd_submit(args) -> int:
    from repro.service.client import submit_job
    from repro.service.jobs import normalize_params

    params = _parse_job_params(args.param)
    # Validate client-side so a typo'd --param fails in one actionable
    # line (naming the valid keys) without needing a reachable server.
    normalize_params(args.kind, params)
    job = submit_job(
        args.host,
        args.port,
        args.kind,
        params,
        priority=args.priority,
        on_event=None if args.quiet else _print_event,
    )
    return _finish_job(job)


def _cmd_attach(args) -> int:
    from repro.service.client import attach_job

    job = attach_job(
        args.host,
        args.port,
        args.job_id,
        include_result=not args.no_result,
        on_event=None if args.quiet else _print_event,
    )
    return _finish_job(job)


def _cmd_jobs(args) -> int:
    import json

    from repro.service.client import fetch_jobs_overview, fetch_metrics

    if args.metrics:
        print(json.dumps(fetch_metrics(args.host, args.port), indent=2))
        return 0
    overview = fetch_jobs_overview(args.host, args.port)
    recovery = overview.get("recovery") or {}
    if recovery.get("journal_enabled"):
        print(
            "journal: "
            + ", ".join(
                "%s=%d" % (name, recovery.get(name, 0))
                for name in sorted(recovery)
                if name != "journal_enabled"
            )
        )
    jobs = overview.get("jobs") or []
    if not jobs:
        print("no jobs")
        return 0
    print(
        "%-11s %-9s %-9s %-9s %6s" % ("JOB", "KIND", "STATUS", "SOURCE", "BATCH")
    )
    for job in jobs:
        print(
            "%-11s %-9s %-9s %-9s %6d"
            % (
                job["job_id"],
                job["spec"]["kind"],
                job["status"],
                job.get("cache") or "computed",
                job.get("batch_size", 1),
            )
        )
    return 0


_COMMANDS = {
    "census": _cmd_census,
    "attack": _cmd_attack,
    "fullkey": _cmd_fullkey,
    "scan": _cmd_scan,
    "timing": _cmd_timing,
    "floorplan": _cmd_floorplan,
    "covert": _cmd_covert,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "attach": _cmd_attach,
    "jobs": _cmd_jobs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Structured campaign failures (:class:`repro.util.ReproError`:
    shard exhaustion, corrupt trace files or checkpoints, non-finite
    leakage) are reported as one actionable line on stderr — with a
    resume hint when a checkpoint is in play — instead of a traceback.
    """
    from repro.util.errors import ReproError

    args = _build_parser().parse_args(argv)
    resume_hint = ""
    if getattr(args, "checkpoint", None):
        resume_hint = (
            "; completed work is checkpointed — rerun with --resume "
            "to continue from %s" % args.checkpoint
        )
    try:
        _validate_parallel_args(args)
        spec = getattr(args, "kernels", None)
        if spec is not None:
            from repro.util import kernels

            # Apply the backend selection for the whole command (and,
            # via REPRO_KERNELS, for its process-pool workers);
            # restored on exit so in-process callers are unaffected.
            with kernels.use(spec):
                return _COMMANDS[args.command](args)
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(
            "error: %s%s" % (error, resume_hint),
            file=sys.stderr,
        )
        return 2
    except KeyboardInterrupt:
        print(
            "interrupted%s" % resume_hint,
            file=sys.stderr,
        )
        return 130


if __name__ == "__main__":
    sys.exit(main())

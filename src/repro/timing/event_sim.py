"""Event-driven timed gate-level simulation.

This is the ground-truth model of the sensing mechanism.  Given

* a netlist with annotated per-gate delays,
* a supply voltage (assumed constant within one short clock cycle),
* the circuit's settled state under the *reset* stimulus, and
* the *measure* stimulus applied at ``t = 0``,

the simulator propagates transitions with voltage-scaled transport
delays and reports each net's value at the sampling instant — exactly
what an overclocked register bank latches on the early clock edge.
Endpoints whose final transition has not arrived by the sample time
latch a *stale* value; as the supply voltage moves, the set of stale
endpoints moves with it.  That is the improvised sensor.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.timing.delay_model import DelayAnnotation


@dataclass
class TimedSnapshot:
    """Values of all nets at one sampling instant.

    Attributes:
        time_ps: sampling time relative to the input change.
        values: net name -> 0/1 value at ``time_ps``.
        settled: True when no further events were pending.
    """

    time_ps: float
    values: Dict[str, int]
    settled: bool

    def outputs(self, nets: Sequence[str]) -> List[int]:
        """Values of the given nets, in order."""
        return [self.values[net] for net in nets]


class TimedSimulator:
    """Event-driven simulator for one annotated netlist.

    The simulator is reusable: each :meth:`run_transition` call plays
    one reset→measure cycle at a given supply voltage.

    Example:
        >>> from repro.circuits import build_ripple_carry_adder
        >>> from repro.circuits import adder_input_assignment
        >>> from repro.timing import annotate_delays
        >>> nl = build_ripple_carry_adder(8)
        >>> sim = TimedSimulator(annotate_delays(nl))
        >>> snap = sim.run_transition(
        ...     adder_input_assignment(0, 0, 8),
        ...     adder_input_assignment(255, 1, 8),
        ...     sample_time_ps=1e9)  # effectively: wait until settled
        >>> [snap.values['s%d' % i] for i in range(8)] == [0] * 8
        True
    """

    def __init__(self, annotation: DelayAnnotation):
        self._annotation = annotation
        self._netlist = annotation.netlist
        if not self._netlist.frozen:
            raise ValueError("netlist must be frozen")

    @property
    def annotation(self) -> DelayAnnotation:
        return self._annotation

    def run_transition(
        self,
        initial_inputs: Mapping[str, int],
        final_inputs: Mapping[str, int],
        sample_time_ps: float,
        voltage: float = 1.0,
        extra_sample_times_ps: Optional[Sequence[float]] = None,
    ) -> TimedSnapshot:
        """Simulate one input transition and sample at ``sample_time_ps``.

        Args:
            initial_inputs: settled input assignment before ``t=0``.
            final_inputs: input assignment applied at ``t=0``.
            sample_time_ps: when the capturing registers latch.
            voltage: supply voltage during this cycle; all gate delays
                are scaled by the annotation's delay model.
            extra_sample_times_ps: unused by the main flow; present so
                multi-tap captures can reuse one propagation run via
                :meth:`run_transition_multi`.

        Returns:
            snapshot of all net values at the sampling instant.
        """
        snapshots = self.run_transition_multi(
            initial_inputs, final_inputs, [sample_time_ps], voltage
        )
        return snapshots[0]

    def run_transition_multi(
        self,
        initial_inputs: Mapping[str, int],
        final_inputs: Mapping[str, int],
        sample_times_ps: Sequence[float],
        voltage: float = 1.0,
    ) -> List[TimedSnapshot]:
        """Like :meth:`run_transition` for several sample times at once.

        ``sample_times_ps`` must be sorted ascending.  A single event
        propagation serves all snapshots, which the calibration sweep
        uses to trace an endpoint's settling behaviour cheaply.
        """
        if not sample_times_ps:
            raise ValueError("need at least one sample time")
        if any(
            b < a for a, b in zip(sample_times_ps, sample_times_ps[1:])
        ):
            raise ValueError("sample times must be sorted ascending")
        netlist = self._netlist
        factor = self._annotation.model.delay_factor(voltage)

        values = netlist.evaluate(initial_inputs)
        counter = itertools.count()
        queue: List[Tuple[float, int, str, int]] = []

        # Apply the new input values at t = 0.
        for net in netlist.inputs:
            new_value = final_inputs[net]
            if new_value not in (0, 1):
                raise ValueError(
                    "input %s must be 0/1, got %r" % (net, new_value)
                )
            if new_value != values[net]:
                heapq.heappush(queue, (0.0, next(counter), net, new_value))

        snapshots: List[TimedSnapshot] = []
        sample_iter = iter(sample_times_ps)
        next_sample = next(sample_iter)

        def take_snapshots_up_to(event_time: float) -> None:
            """Emit snapshots for all sample times at or before ``event_time``.

            The comparison is inclusive: a transition scheduled exactly
            at a sample time has *not* propagated through the capture
            register yet, so the latch observes the value from strictly
            before the clock edge.  (With a strict ``<`` an exact-tie
            event would be applied first and wrongly counted as
            latched.)
            """
            nonlocal next_sample
            while next_sample is not None and next_sample <= event_time:
                snapshots.append(
                    TimedSnapshot(next_sample, dict(values), settled=False)
                )
                next_sample = next(sample_iter, None)

        while queue:
            time_ps, _, net, value = heapq.heappop(queue)
            take_snapshots_up_to(time_ps)
            if next_sample is None:
                break
            if values[net] == value:
                continue
            values[net] = value
            for consumer in netlist.fanout_of(net):
                gate = netlist.gate_driving(consumer)
                operands = [values[n] for n in gate.inputs]
                new_out = gate.gate_type.evaluate(operands)
                delay = self._annotation.gate_delay_ps[consumer] * factor
                heapq.heappush(
                    queue, (time_ps + delay, next(counter), consumer, new_out)
                )

        settled = not queue
        while next_sample is not None:
            snapshots.append(
                TimedSnapshot(next_sample, dict(values), settled=settled)
            )
            next_sample = next(sample_iter, None)
        return snapshots

    def settled_outputs(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Zero-delay settled output values (convenience wrapper)."""
        return self._netlist.evaluate_outputs(inputs)


def endpoint_waveforms(
    simulator: TimedSimulator,
    initial_inputs: Mapping[str, int],
    final_inputs: Mapping[str, int],
    endpoints: Sequence[str],
    voltage: float = 1.0,
) -> Dict[str, List[Tuple[float, int]]]:
    """Full transition history of each endpoint for one stimulus pair.

    Returns, per endpoint, the list ``[(t0, v0), (t1, v1), ...]`` where
    ``(t, v)`` means "the endpoint changed to value v at time t"; the
    first entry is ``(-inf, initial_value)``.  Because all gate delays
    share one voltage scaling factor, the waveform at any other supply
    voltage is this waveform with time multiplied by
    ``delay_factor(v) / delay_factor(v_ref)`` — the property the fast
    calibrated sensor model in :mod:`repro.core.calibration` exploits.
    """
    netlist = simulator.annotation.netlist
    factor = simulator.annotation.model.delay_factor(voltage)

    values = netlist.evaluate(initial_inputs)
    history: Dict[str, List[Tuple[float, int]]] = {
        net: [(float("-inf"), values[net])] for net in endpoints
    }
    endpoint_set = set(endpoints)
    counter = itertools.count()
    queue: List[Tuple[float, int, str, int]] = []
    for net in netlist.inputs:
        if final_inputs[net] != values[net]:
            heapq.heappush(queue, (0.0, next(counter), net, final_inputs[net]))
    while queue:
        time_ps, _, net, value = heapq.heappop(queue)
        if values[net] == value:
            continue
        values[net] = value
        if net in endpoint_set:
            history[net].append((time_ps, value))
        for consumer in netlist.fanout_of(net):
            gate = netlist.gate_driving(consumer)
            operands = [values[n] for n in gate.inputs]
            new_out = gate.gate_type.evaluate(operands)
            delay = simulator.annotation.gate_delay_ps[consumer] * factor
            heapq.heappush(
                queue, (time_ps + delay, next(counter), consumer, new_out)
            )
    return history


def endpoint_settle_times(
    simulator: TimedSimulator,
    initial_inputs: Mapping[str, int],
    final_inputs: Mapping[str, int],
    endpoints: Sequence[str],
    voltage: float = 1.0,
) -> Dict[str, float]:
    """Time of each endpoint's **last** transition for one stimulus pair.

    This is the dynamic analogue of an STA arrival time: it accounts for
    which paths the stimulus actually activates.  Endpoints that never
    toggle get settle time 0.  The calibration layer converts these
    times into latch-threshold voltages.
    """
    netlist = simulator.annotation.netlist
    factor = simulator.annotation.model.delay_factor(voltage)

    values = netlist.evaluate(initial_inputs)
    counter = itertools.count()
    queue: List[Tuple[float, int, str, int]] = []
    for net in netlist.inputs:
        if final_inputs[net] != values[net]:
            heapq.heappush(queue, (0.0, next(counter), net, final_inputs[net]))

    last_change: Dict[str, float] = {net: 0.0 for net in endpoints}
    endpoint_set = set(endpoints)
    while queue:
        time_ps, _, net, value = heapq.heappop(queue)
        if values[net] == value:
            continue
        values[net] = value
        if net in endpoint_set:
            last_change[net] = time_ps
        for consumer in netlist.fanout_of(net):
            gate = netlist.gate_driving(consumer)
            operands = [values[n] for n in gate.inputs]
            new_out = gate.gate_type.evaluate(operands)
            delay = simulator.annotation.gate_delay_ps[consumer] * factor
            heapq.heappush(
                queue, (time_ps + delay, next(counter), consumer, new_out)
            )
    return last_change

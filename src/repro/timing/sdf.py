"""Delay-annotation persistence in a simplified SDF-like format.

Real EDA flows hand timing between tools as SDF (Standard Delay
Format) files.  This module serializes a
:class:`~repro.timing.delay_model.DelayAnnotation` to a minimal
SDF-inspired text format so an "implementation run" can be stored,
diffed, and reloaded — useful for pinning the exact timing a published
experiment used.

Format (one CELL per gate, IOPATH delay in picoseconds)::

    (DELAYFILE
      (DESIGN "alu192")
      (TIMESCALE 1ps)
      (CELL (CELLTYPE "XOR") (INSTANCE fa0_axb)
        (DELAY (ABSOLUTE (IOPATH * fa0_axb (123.4)))))
      ...
    )
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.netlist.netlist import Netlist
from repro.timing.delay_model import DelayAnnotation, DelayModel


class SdfError(Exception):
    """Malformed delay file or mismatch against the netlist."""


def write_sdf(annotation: DelayAnnotation) -> str:
    """Serialize an annotation to SDF-like text."""
    netlist = annotation.netlist
    lines = [
        "(DELAYFILE",
        '  (DESIGN "%s")' % netlist.name,
        "  (TIMESCALE 1ps)",
    ]
    for gate in netlist.gates:
        delay = annotation.gate_delay_ps[gate.output]
        lines.append(
            '  (CELL (CELLTYPE "%s") (INSTANCE %s)'
            % (gate.type_name, gate.output)
        )
        # repr() keeps full float precision so reload is bit-exact.
        lines.append(
            "    (DELAY (ABSOLUTE (IOPATH * %s (%s)))))"
            % (gate.output, repr(float(delay)))
        )
    lines.append(")")
    return "\n".join(lines) + "\n"


_DESIGN_RE = re.compile(r'\(DESIGN\s+"([^"]+)"\)')
_CELL_RE = re.compile(
    r'\(CELL \(CELLTYPE "([^"]+)"\) \(INSTANCE ([^\s)]+)\)'
)
_IOPATH_RE = re.compile(
    r"\(IOPATH \* ([^\s)]+) \(([-0-9.eE+]+)\)\)"
)


def read_sdf(
    text: str,
    netlist: Netlist,
    model: Optional[DelayModel] = None,
) -> DelayAnnotation:
    """Parse SDF-like text back into an annotation for ``netlist``.

    Validates that the file covers exactly the netlist's gates and that
    recorded cell types match.

    Raises:
        SdfError: on design-name mismatch, missing/extra gates, type
            mismatches, or non-positive delays.
    """
    design = _DESIGN_RE.search(text)
    if design is None:
        raise SdfError("missing (DESIGN ...) header")
    if design.group(1) != netlist.name:
        raise SdfError(
            "delay file is for design %r, netlist is %r"
            % (design.group(1), netlist.name)
        )

    cell_types: Dict[str, str] = {
        instance: cell_type
        for cell_type, instance in _CELL_RE.findall(text)
    }
    delays: Dict[str, float] = {}
    for instance, value in _IOPATH_RE.findall(text):
        delay = float(value)
        if delay <= 0:
            raise SdfError("non-positive delay for %s" % instance)
        delays[instance] = delay

    expected = {gate.output for gate in netlist.gates}
    missing = expected - set(delays)
    extra = set(delays) - expected
    if missing:
        raise SdfError(
            "delay file missing %d gate(s) (first: %s)"
            % (len(missing), sorted(missing)[0])
        )
    if extra:
        raise SdfError(
            "delay file has %d unknown gate(s) (first: %s)"
            % (len(extra), sorted(extra)[0])
        )
    for gate in netlist.gates:
        recorded = cell_types.get(gate.output)
        if recorded is not None and recorded != gate.type_name:
            raise SdfError(
                "gate %s is %s in the netlist but %s in the delay file"
                % (gate.output, gate.type_name, recorded)
            )
    return DelayAnnotation(netlist, delays, model or DelayModel())

"""Timing substrate: delay models, STA, event-driven timed simulation.

The chain used throughout the library:

1. :func:`annotate_delays` assigns voltage-scalable nominal delays to a
   netlist (gate intrinsic + deterministic routing scatter);
2. :func:`analyze_timing` performs static timing analysis for max-clock
   reporting and the strict timing-check defense;
3. :class:`TimedSimulator` plays reset→measure transitions at a given
   supply voltage and reports what overclocked capture registers latch.
"""

from repro.timing.delay_model import (
    ALPHA,
    NOMINAL_VOLTAGE,
    THRESHOLD_VOLTAGE,
    DelayAnnotation,
    DelayModel,
    annotate_delays,
)
from repro.timing.event_sim import (
    TimedSimulator,
    TimedSnapshot,
    endpoint_settle_times,
    endpoint_waveforms,
)
from repro.timing.activity import (
    ActivityReport,
    average_activity_per_cycle,
    measure_activity,
)
from repro.timing.sdf import SdfError, read_sdf, write_sdf
from repro.timing.techmap import (
    DEFAULT_CELL_DELAYS_PS,
    FpgaImplementation,
    fpga_annotate,
)
from repro.timing.sta import (
    TimingPath,
    TimingReport,
    analyze_timing,
    path_to_endpoint,
)

__all__ = [
    "ALPHA",
    "ActivityReport",
    "SdfError",
    "average_activity_per_cycle",
    "measure_activity",
    "read_sdf",
    "write_sdf",
    "DEFAULT_CELL_DELAYS_PS",
    "FpgaImplementation",
    "fpga_annotate",
    "DelayAnnotation",
    "DelayModel",
    "NOMINAL_VOLTAGE",
    "THRESHOLD_VOLTAGE",
    "TimedSimulator",
    "TimedSnapshot",
    "TimingPath",
    "TimingReport",
    "analyze_timing",
    "annotate_delays",
    "endpoint_settle_times",
    "endpoint_waveforms",
    "path_to_endpoint",
]

"""FPGA technology-mapping model: from gate netlist to placed delays.

The generic annotation in :mod:`repro.timing.delay_model` treats every
gate as a standalone cell.  Real FPGA implementation changes the
picture substantially, and the paper's observations (a *scattered* set
of sensitive endpoints, Figs. 3/4/7) are a direct consequence:

* **Carry chains**: synthesis maps ripple-carry AND/OR pairs onto the
  dedicated CARRY4 fabric, reducing per-stage carry delay by roughly an
  order of magnitude versus LUT hops.  This is why a 192-bit adder
  closes timing at 50 MHz at all.
* **LUT packing**: XOR/MUX/etc. land in 6-input LUTs with a roughly
  uniform cell delay.
* **Endpoint routing**: each capture flip-flop sits wherever the placer
  put it; the final net to it crosses a different stretch of fabric per
  endpoint.  These per-endpoint detours dominate endpoint-to-endpoint
  arrival differences and scatter the sensitive bits across the output
  word (the paper's best ALU bit is 21, not a carry-frontier bit).

:func:`fpga_annotate` applies this model and returns the same
:class:`~repro.timing.delay_model.DelayAnnotation` the rest of the
timing stack consumes.  All draws are keyed by a placement seed, so an
"implementation run" is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.netlist.netlist import Netlist
from repro.timing.delay_model import DelayAnnotation, DelayModel
from repro.util.rng import make_rng

#: Default per-type cell delays after mapping (picoseconds).
DEFAULT_CELL_DELAYS_PS: Dict[str, float] = {
    "AND": 26.0,   # carry-chain MUXCY/AND leg
    "OR": 26.0,    # carry-chain XORCY/OR leg
    "NAND": 95.0,
    "NOR": 95.0,
    "XOR": 124.0,  # LUT
    "XNOR": 124.0,
    "MUX": 124.0,  # LUT / F7 mux
    "BUF": 35.0,   # route-through
    "NOT": 35.0,
}


@dataclass(frozen=True)
class FpgaImplementation:
    """Parameters of one simulated implementation (place & route) run.

    Attributes:
        seed: placement seed; every delay draw derives from it.
        cell_delays_ps: post-mapping cell delay per gate type.
        wire_spread: relative scatter of local (cell-to-cell) routing,
            drawn per net in ``[0, wire_spread]``.
        endpoint_route_min_ps / endpoint_route_max_ps: range of the
            per-endpoint final-net routing detour to the capture
            register.  The width of this range controls how scattered
            the sensitive-bit set is.
    """

    seed: int = 0
    cell_delays_ps: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CELL_DELAYS_PS)
    )
    wire_spread: float = 0.45
    endpoint_route_min_ps: float = 250.0
    endpoint_route_max_ps: float = 3250.0

    def __post_init__(self) -> None:
        if self.wire_spread < 0:
            raise ValueError("wire_spread must be non-negative")
        if not 0 <= self.endpoint_route_min_ps <= self.endpoint_route_max_ps:
            raise ValueError("invalid endpoint route range")


def fpga_annotate(
    netlist: Netlist,
    implementation: FpgaImplementation = FpgaImplementation(),
    model: Optional[DelayModel] = None,
) -> DelayAnnotation:
    """Annotate ``netlist`` with post-implementation delays.

    Every gate receives its mapped cell delay scaled by a per-net local
    wire factor; gates driving primary outputs additionally receive the
    endpoint routing detour to their capture register.
    """
    if not netlist.frozen:
        raise ValueError("netlist must be frozen")
    outputs = set(netlist.outputs)
    delays: Dict[str, float] = {}
    default_delay = 124.0
    for gate in netlist.gates:
        base = implementation.cell_delays_ps.get(
            gate.type_name, default_delay
        )
        rng = make_rng(
            implementation.seed, "fpga-route", netlist.name, gate.output
        )
        wire = 1.0 + implementation.wire_spread * rng.random()
        delay = base * wire
        if gate.output in outputs:
            detour = rng.uniform(
                implementation.endpoint_route_min_ps,
                implementation.endpoint_route_max_ps,
            )
            delay += detour
        delays[gate.output] = delay
    return DelayAnnotation(netlist, delays, model or DelayModel())

"""Voltage-dependent gate-delay models.

The attack mechanism rests on one physical fact: CMOS gate delay grows
when the supply voltage drops.  We use the alpha-power-law MOSFET model
(Sakurai/Newton), in which propagation delay scales as::

    d(V) = d_nominal * ((V_nom - V_th) / (V - V_th)) ** alpha

with threshold voltage ``V_th`` and velocity-saturation exponent
``alpha`` (~1.3 for modern processes).  At the nominal supply the
factor is exactly 1.

Per-gate nominal delays come from the gate-type library
(:mod:`repro.netlist.gates`) scaled by a deterministic per-net *routing
factor*.  On a real FPGA, placement and routing add wire delay that
differs per net; this scatter is what makes the set of
voltage-sensitive endpoint bits irregular (paper Figs. 3/4: "the
circuit is quite scattered") instead of a clean carry frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.util.rng import make_rng

#: Nominal core supply voltage of the modeled 7-series device (volts).
NOMINAL_VOLTAGE = 1.0
#: Transistor threshold voltage used by the alpha-power law (volts).
THRESHOLD_VOLTAGE = 0.35
#: Velocity-saturation exponent.
ALPHA = 1.3


@dataclass(frozen=True)
class DelayModel:
    """Alpha-power-law supply-voltage delay scaling.

    >>> m = DelayModel()
    >>> round(m.delay_factor(1.0), 6)
    1.0
    >>> m.delay_factor(0.95) > 1.0  # droop slows gates down
    True
    >>> m.delay_factor(1.05) < 1.0  # overshoot speeds them up
    True
    """

    nominal_voltage: float = NOMINAL_VOLTAGE
    threshold_voltage: float = THRESHOLD_VOLTAGE
    alpha: float = ALPHA

    def __post_init__(self) -> None:
        if self.nominal_voltage <= self.threshold_voltage:
            raise ValueError(
                "nominal voltage %.3f must exceed threshold %.3f"
                % (self.nominal_voltage, self.threshold_voltage)
            )
        if self.alpha <= 0:
            raise ValueError("alpha must be positive, got %r" % self.alpha)

    def delay_factor(self, voltage) -> np.ndarray:
        """Multiplicative delay factor at ``voltage`` (scalar or array).

        Voltages at or below the threshold would stall the transistor
        entirely; they are clamped just above threshold so the factor
        stays finite (the PDN model never produces such droops in
        practice, but the guard keeps sweeps robust).
        """
        v = np.asarray(voltage, dtype=float)
        floor = self.threshold_voltage + 1e-3
        v = np.maximum(v, floor)
        headroom = self.nominal_voltage - self.threshold_voltage
        factor = (headroom / (v - self.threshold_voltage)) ** self.alpha
        if np.ndim(voltage) == 0:
            return float(factor)
        return factor

    def voltage_for_factor(self, factor: float) -> float:
        """Inverse of :meth:`delay_factor` (scalar).

        Used by the calibration layer to convert a per-endpoint critical
        delay factor into the latch-threshold voltage.
        """
        if factor <= 0:
            raise ValueError("factor must be positive, got %r" % factor)
        headroom = self.nominal_voltage - self.threshold_voltage
        return self.threshold_voltage + headroom * factor ** (-1.0 / self.alpha)


@dataclass
class DelayAnnotation:
    """Per-gate nominal delays (ps) for one placed netlist.

    Attributes:
        netlist: the annotated netlist.
        gate_delay_ps: mapping from gate output net to its nominal
            propagation delay in picoseconds, routing included.
        model: the voltage scaling model shared by all gates.
    """

    netlist: Netlist
    gate_delay_ps: Dict[str, float]
    model: DelayModel = field(default_factory=DelayModel)

    def delay_at(self, net: str, voltage: float) -> float:
        """Delay of the gate driving ``net`` at a given supply voltage."""
        return self.gate_delay_ps[net] * self.model.delay_factor(voltage)


def annotate_delays(
    netlist: Netlist,
    seed: int = 0,
    routing_spread: float = 0.35,
    routing_floor: float = 0.25,
    model: Optional[DelayModel] = None,
) -> DelayAnnotation:
    """Assign a nominal delay to every gate of ``netlist``.

    Each gate gets ``type_delay * (1 + wire)`` where ``wire`` is a
    deterministic pseudo-random routing contribution drawn uniformly
    from ``[routing_floor, routing_floor + routing_spread]`` per output
    net.  The draw is keyed by ``(seed, netlist.name, net)`` so the same
    placement seed always reproduces the same timing — the simulated
    analogue of an FPGA implementation run with a fixed placer seed.

    Args:
        netlist: frozen netlist to annotate.
        seed: placement/routing seed.
        routing_spread: width of the uniform wire-delay factor range.
        routing_floor: minimum wire-delay factor.
        model: voltage model (default :class:`DelayModel`).
    """
    if not netlist.frozen:
        raise ValueError("netlist must be frozen before delay annotation")
    if routing_spread < 0 or routing_floor < 0:
        raise ValueError("routing factors must be non-negative")
    delays: Dict[str, float] = {}
    for gate in netlist.gates:
        rng = make_rng(seed, "routing", netlist.name, gate.output)
        wire = routing_floor + routing_spread * rng.random()
        delays[gate.output] = gate.gate_type.nominal_delay_ps * (1.0 + wire)
    return DelayAnnotation(netlist, delays, model or DelayModel())

"""Switching-activity analysis and dynamic-power estimation.

Counts the gate-output transitions a stimulus causes — the quantity
that determines a circuit's dynamic current draw (``P = a·C·V²·f``).
Used to:

* ground the AES current model (per-cycle switching scales with state
  Hamming distance),
* compare stimuli as *aggressors* (the paper's RO array maximizes
  toggling; any high-activity benign circuit can serve the same role,
  e.g. as the covert-channel transmitter), and
* report per-gate glitch counts (array multipliers like the C6288 are
  notoriously glitchy — the reason their endpoints have dense edge
  lists).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.timing.delay_model import DelayAnnotation


@dataclass
class ActivityReport:
    """Transition census of one input-transition event.

    Attributes:
        transitions_per_gate: gate output net -> number of output
            transitions during settling.
        settled: whether the circuit reached a fixed point (it always
            does for acyclic netlists).
    """

    transitions_per_gate: Dict[str, int]
    settled: bool = True

    @property
    def total_transitions(self) -> int:
        return sum(self.transitions_per_gate.values())

    @property
    def glitch_transitions(self) -> int:
        """Transitions beyond the functionally necessary single toggle.

        A gate whose settled value differs from its initial value needs
        one transition; one whose value is unchanged needs zero.  Every
        transition above that is a hazard/glitch.
        """
        glitches = 0
        for count in self.transitions_per_gate.values():
            necessary = count % 2  # odd count = net value changed
            glitches += count - necessary
        return glitches

    def dynamic_energy_au(self, energy_per_transition: float = 1.0) -> float:
        """Dynamic switching energy in arbitrary units."""
        return self.total_transitions * energy_per_transition


def measure_activity(
    annotation: DelayAnnotation,
    initial_inputs: Mapping[str, int],
    final_inputs: Mapping[str, int],
    voltage: float = 1.0,
) -> ActivityReport:
    """Count every gate-output transition for one stimulus change.

    Runs the same event-driven propagation as the timed simulator but
    tallies transitions instead of sampling values.
    """
    netlist = annotation.netlist
    if not netlist.frozen:
        raise ValueError("netlist must be frozen")
    factor = annotation.model.delay_factor(voltage)

    values = netlist.evaluate(initial_inputs)
    transitions: Dict[str, int] = {
        gate.output: 0 for gate in netlist.gates
    }
    counter = itertools.count()
    queue: List[Tuple[float, int, str, int]] = []
    for net in netlist.inputs:
        if final_inputs[net] != values[net]:
            heapq.heappush(
                queue, (0.0, next(counter), net, final_inputs[net])
            )
    while queue:
        time_ps, _, net, value = heapq.heappop(queue)
        if values[net] == value:
            continue
        values[net] = value
        if net in transitions:
            transitions[net] += 1
        for consumer in netlist.fanout_of(net):
            gate = netlist.gate_driving(consumer)
            operands = [values[n] for n in gate.inputs]
            new_out = gate.gate_type.evaluate(operands)
            delay = annotation.gate_delay_ps[consumer] * factor
            heapq.heappush(
                queue, (time_ps + delay, next(counter), consumer, new_out)
            )
    return ActivityReport(transitions_per_gate=transitions)


def average_activity_per_cycle(
    annotation: DelayAnnotation,
    stimulus_pairs: List[Tuple[Mapping[str, int], Mapping[str, int]]],
) -> float:
    """Mean transitions per cycle over a stimulus sequence.

    Args:
        stimulus_pairs: list of (before, after) input assignments, one
            per simulated cycle.
    """
    if not stimulus_pairs:
        raise ValueError("need at least one stimulus pair")
    total = 0
    for before, after in stimulus_pairs:
        total += measure_activity(annotation, before, after).total_transitions
    return total / len(stimulus_pairs)

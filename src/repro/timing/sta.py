"""Static timing analysis over annotated netlists.

STA computes worst-case arrival times assuming every path can be
simultaneously active.  The library uses it in three roles:

* reporting the legitimate maximum clock rate of a benign circuit (the
  paper synthesizes the ALU/C6288 for 50 MHz and then overclocks them
  to 300 MHz);
* ranking endpoints by nominal path delay (the raw material for the
  calibration layer); and
* the *strict timing check* defense of Sec. VI, which compares a
  tenant's requested clock against the analyzed critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.timing.delay_model import DelayAnnotation


@dataclass(frozen=True)
class TimingPath:
    """One register-to-register (here: input-to-endpoint) path.

    Attributes:
        endpoint: the primary-output net the path terminates at.
        arrival_ps: path delay in picoseconds at nominal voltage.
        nets: nets along the path from launching input to endpoint.
    """

    endpoint: str
    arrival_ps: float
    nets: Tuple[str, ...]

    @property
    def startpoint(self) -> str:
        return self.nets[0]

    @property
    def depth(self) -> int:
        """Number of gates traversed."""
        return len(self.nets) - 1


@dataclass
class TimingReport:
    """Full STA result for one annotated netlist.

    Attributes:
        arrival_ps: worst arrival time of every net.
        endpoint_arrivals: arrival times of primary outputs only.
        critical_path: the single worst path.
        clock_period_ps: analyzed period (0 if none supplied).
    """

    arrival_ps: Dict[str, float]
    endpoint_arrivals: Dict[str, float]
    critical_path: TimingPath
    clock_period_ps: float = 0.0

    @property
    def critical_delay_ps(self) -> float:
        return self.critical_path.arrival_ps

    @property
    def max_frequency_mhz(self) -> float:
        """Highest clock (MHz) that meets timing at nominal voltage."""
        return 1e6 / self.critical_delay_ps

    def slack_ps(self, endpoint: str) -> float:
        """Setup slack of ``endpoint`` against ``clock_period_ps``."""
        if self.clock_period_ps <= 0:
            raise ValueError("report was built without a clock period")
        return self.clock_period_ps - self.endpoint_arrivals[endpoint]

    def failing_endpoints(self) -> List[str]:
        """Endpoints with negative slack at the analyzed period."""
        if self.clock_period_ps <= 0:
            raise ValueError("report was built without a clock period")
        return [
            net
            for net, arrival in self.endpoint_arrivals.items()
            if arrival > self.clock_period_ps
        ]


def analyze_timing(
    annotation: DelayAnnotation, clock_period_ps: float = 0.0
) -> TimingReport:
    """Run STA on an annotated netlist.

    Arrival time of a primary input is 0; of a gate output, the max
    input arrival plus the gate's annotated nominal delay.

    Args:
        annotation: delays from :func:`repro.timing.annotate_delays`.
        clock_period_ps: optional period for slack reporting.
    """
    netlist = annotation.netlist
    arrival: Dict[str, float] = {net: 0.0 for net in netlist.inputs}
    worst_pred: Dict[str, Optional[str]] = {net: None for net in netlist.inputs}
    for gate in netlist.gates:  # topological order (frozen netlist)
        best_net = gate.inputs[0]
        best_time = arrival[best_net]
        for net in gate.inputs[1:]:
            if arrival[net] > best_time:
                best_time = arrival[net]
                best_net = net
        arrival[gate.output] = best_time + annotation.gate_delay_ps[gate.output]
        worst_pred[gate.output] = best_net

    endpoint_arrivals = {net: arrival[net] for net in netlist.outputs}
    worst_endpoint = max(endpoint_arrivals, key=endpoint_arrivals.get)
    path_nets: List[str] = [worst_endpoint]
    cursor: Optional[str] = worst_pred[worst_endpoint]
    while cursor is not None:
        path_nets.append(cursor)
        cursor = worst_pred[cursor]
    path_nets.reverse()
    critical = TimingPath(
        worst_endpoint, endpoint_arrivals[worst_endpoint], tuple(path_nets)
    )
    return TimingReport(
        arrival_ps=arrival,
        endpoint_arrivals=endpoint_arrivals,
        critical_path=critical,
        clock_period_ps=clock_period_ps,
    )


def path_to_endpoint(
    annotation: DelayAnnotation, endpoint: str
) -> TimingPath:
    """Worst path terminating at a specific endpoint."""
    report = analyze_timing(annotation)
    netlist = annotation.netlist
    if endpoint not in netlist.outputs:
        raise KeyError("net %s is not a primary output" % endpoint)
    nets: List[str] = [endpoint]
    cursor = endpoint
    while True:
        gate = netlist.gate_driving(cursor)
        if gate is None:
            break
        cursor = max(gate.inputs, key=lambda n: report.arrival_ps[n])
        nets.append(cursor)
    nets.reverse()
    return TimingPath(endpoint, report.endpoint_arrivals[endpoint], tuple(nets))

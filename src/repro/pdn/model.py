"""Second-order transient model of the on-die power distribution network.

The PDN couples all tenants of the FPGA electrically (paper Sec. II):
current drawn by one region produces supply-voltage fluctuations that
are observable everywhere on the die.  A chip-package PDN behaves, to
first order, like a series RLC network: a current step produces a
voltage *droop* followed by damped ringing, and a sudden current release
produces an *overshoot* — exactly the shapes in the paper's Fig. 6.

We model the supply seen by each region as::

    v(t) = V_nom - z(t) + ambient_noise
    z'' + 2*zeta*omega0*z' + omega0^2 * z = omega0^2 * R * i(t)

where ``i(t)`` is the total current drawn (sum over regions, weighted
by inter-region coupling), ``R`` the effective PDN resistance, and
``omega0 = 2*pi*f_res`` the package resonance.  The ODE is discretized
with a semi-implicit Euler scheme at the simulation sample rate; the
state update collapses algebraically into the second-order linear
recurrence::

    droop[n] = c1*droop[n-1] + c2*droop[n-2] + b0*i[n]
    c1 = 2 - (omega0*dt)^2 - 2*zeta*omega0*dt
    c2 = -(1 - 2*zeta*omega0*dt)
    b0 = (omega0*dt)^2 * R

which is evaluated as a vectorized IIR filter
(:meth:`PDNModel.integrate_batch`); the pure-Python recurrence loop
(:meth:`PDNModel._integrate_reference`) is kept as the bit-identical
ground truth the fast path is validated against.  The recurrence is
stable only while ``omega0*dt`` stays below its Jury bound —
:meth:`PDNModel.recurrence_coefficients` raises ``ValueError`` for
resonance/sample-rate combinations that would silently diverge.

Typical FPGA PDN resonances sit in the 100 kHz – 10 MHz band; the
default 2 MHz makes a 4 MHz RO on/off pattern produce the two clearly
separated droop/overshoot events of Fig. 6 when sampled at 150 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.util import kernels
from repro.util.rng import make_rng

try:  # scipy is optional; the pure-numpy fallback is bit-identical.
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - depends on the environment
    _lfilter = None


# ----------------------------------------------------------------------
# Registered kernel backends for the droop recurrence.  The numpy pair
# is the bit-identity reference; scipy's lfilter (registered only when
# importable) and the native sequential loop produce the same float64
# operation sequence per sample, so all three match bit-for-bit.
# ----------------------------------------------------------------------


def _integrate_numpy(
    current: np.ndarray, c1: float, c2: float, b0: float
) -> np.ndarray:
    droop = np.empty(current.shape[0], dtype=np.float64)
    z1 = 0.0
    z2 = 0.0
    for n in range(current.shape[0]):
        z = c1 * z1 + c2 * z2 + b0 * current[n]
        droop[n] = z
        z2 = z1
        z1 = z
    return droop


def _integrate_batch_numpy(
    currents: np.ndarray, c1: float, c2: float, b0: float
) -> np.ndarray:
    droop = np.empty_like(currents)
    z1 = np.zeros(currents.shape[0])
    z2 = np.zeros(currents.shape[0])
    for n in range(currents.shape[1]):
        z = c1 * z1 + c2 * z2 + b0 * currents[:, n]
        droop[:, n] = z
        z2 = z1
        z1 = z
    return droop


kernels.register_backend(
    "pdn",
    "numpy",
    integrate=_integrate_numpy,
    integrate_batch=_integrate_batch_numpy,
)

if _lfilter is not None:

    # _lfilter is re-read at call time so tests can simulate scipy
    # disappearing after import; the numpy recurrence is bit-identical.
    def _integrate_scipy(
        current: np.ndarray, c1: float, c2: float, b0: float
    ) -> np.ndarray:
        if _lfilter is None:
            return _integrate_numpy(current, c1, c2, b0)
        return _lfilter([b0], [1.0, -c1, -c2], current)

    def _integrate_batch_scipy(
        currents: np.ndarray, c1: float, c2: float, b0: float
    ) -> np.ndarray:
        if _lfilter is None:
            return _integrate_batch_numpy(currents, c1, c2, b0)
        return _lfilter([b0], [1.0, -c1, -c2], currents, axis=1)

    kernels.register_backend(
        "pdn",
        "scipy",
        integrate=_integrate_scipy,
        integrate_batch=_integrate_batch_scipy,
    )


@dataclass(frozen=True)
class PDNParameters:
    """Electrical parameters of the simulated PDN.

    Attributes:
        nominal_voltage: idle core supply in volts.
        resistance_ohm: effective PDN resistance converting current
            (amperes) into static IR droop (volts).
        resonance_hz: RLC resonance frequency of the chip+package.
        damping: damping ratio ``zeta`` (< 1: underdamped, rings).
        noise_sigma_v: standard deviation of ambient supply noise per
            sample (regulator ripple, unrelated tenant activity).
    """

    nominal_voltage: float = 1.0
    resistance_ohm: float = 0.08
    resonance_hz: float = 2.0e6
    damping: float = 0.2
    noise_sigma_v: float = 0.0012

    def __post_init__(self) -> None:
        if self.resistance_ohm < 0:
            raise ValueError("resistance must be non-negative")
        if self.resonance_hz <= 0:
            raise ValueError("resonance frequency must be positive")
        if not 0 < self.damping:
            raise ValueError("damping ratio must be positive")
        if self.noise_sigma_v < 0:
            raise ValueError("noise sigma must be non-negative")


class PDNModel:
    """Transient PDN simulator shared by all tenants.

    Args:
        params: electrical parameters.
        sample_rate_hz: integration/sampling rate.  The sensing
            experiments run at the sensors' effective sample rate
            (150 MHz), which comfortably resolves a ~MHz resonance.
        regions: region names; currents are summed with pairwise
            coupling before driving the shared PDN state.
        coupling: mapping ``(observer, source) -> weight``; defaults to
            1.0 (fully shared PDN).  Values < 1 model partial supply
            separation between die regions.
        seed: seed for ambient noise.

    Example:
        >>> pdn = PDNModel(sample_rate_hz=150e6, seed=7)
        >>> current = np.zeros(300); current[100:] = 0.5
        >>> v = pdn.simulate({"shared": current})["shared"]
        >>> v[:90].mean() > v[120:180].mean()  # droop after the step
        True
    """

    def __init__(
        self,
        params: PDNParameters = PDNParameters(),
        sample_rate_hz: float = 150e6,
        regions: Sequence[str] = ("shared",),
        coupling: Optional[Mapping[tuple, float]] = None,
        seed: int = 0,
    ):
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if not regions:
            raise ValueError("need at least one region")
        self.params = params
        self.sample_rate_hz = sample_rate_hz
        self.regions = tuple(regions)
        self._coupling = dict(coupling or {})
        self._seed = seed
        # Fail fast on resonance/sample-rate combinations whose Euler
        # recurrence diverges (satellite: stability guard).
        self.recurrence_coefficients()

    def coupling_weight(self, observer: str, source: str) -> float:
        """Coupling from a current source region to an observer region."""
        return self._coupling.get((observer, source), 1.0)

    def recurrence_coefficients(self) -> Tuple[float, float, float]:
        """``(c1, c2, b0)`` of the discretized droop recurrence.

        ``droop[n] = c1*droop[n-1] + c2*droop[n-2] + b0*current[n]`` is
        the semi-implicit Euler update of the RLC ODE written as a
        direct-form IIR filter (see the module docstring for the
        derivation).

        Raises:
            ValueError: when the recurrence is unstable.  With
                ``x = omega0*dt``, the Jury criteria for both poles of
                ``z^2 - c1*z - c2`` to lie inside the unit circle are
                ``2*zeta*x < 2`` and ``x^2 + 4*zeta*x < 4``; past that
                bound the integrator would return exponentially growing
                garbage droop instead of physics.
        """
        p = self.params
        dt = 1.0 / self.sample_rate_hz
        x = 2.0 * np.pi * p.resonance_hz * dt
        two_zeta = 2.0 * p.damping
        if two_zeta * x >= 2.0 or x * x + 2.0 * two_zeta * x >= 4.0:
            raise ValueError(
                "semi-implicit Euler recurrence unstable: omega0*dt = "
                "%.4g (resonance %.4g Hz at %.4g Hz sampling, damping "
                "%.3g) violates the stability bound; lower resonance_hz "
                "or raise sample_rate_hz"
                % (x, p.resonance_hz, self.sample_rate_hz, p.damping)
            )
        c1 = 2.0 - x * x - two_zeta * x
        c2 = -(1.0 - two_zeta * x)
        b0 = x * x * p.resistance_ohm
        return c1, c2, b0

    def _integrate_reference(self, current: np.ndarray) -> np.ndarray:
        """Pure-Python recurrence loop (ground truth for the IIR path)."""
        c1, c2, b0 = self.recurrence_coefficients()
        droop = np.empty(current.shape[0], dtype=np.float64)
        z1 = 0.0  # droop[n-1] (volts)
        z2 = 0.0  # droop[n-2]
        for n in range(current.shape[0]):
            z = c1 * z1 + c2 * z2 + b0 * current[n]
            droop[n] = z
            z2 = z1
            z1 = z
        return droop

    def _integrate(self, current: np.ndarray) -> np.ndarray:
        """Integrate the RLC droop response for one current waveform.

        Dispatched through the kernel registry: ``native`` runs the
        sequential compiled loop, ``scipy`` the IIR ``lfilter`` form,
        ``numpy`` the reference recurrence — all bit-identical.
        """
        current = np.asarray(current, dtype=np.float64)
        c1, c2, b0 = self.recurrence_coefficients()
        return kernels.dispatch("pdn", "integrate")(current, c1, c2, b0)

    def integrate_batch(self, currents: np.ndarray) -> np.ndarray:
        """Droop responses for a batch of current waveforms.

        Args:
            currents: float array ``(traces, samples)``; each row is an
                independent waveform integrated from rest.

        Returns:
            float array ``(traces, samples)`` of droop voltages; row
            ``t`` is bit-identical to ``_integrate(currents[t])`` (the
            recurrence touches each sample with the same three fused
            operations whether evaluated per row or across the batch).
        """
        currents = np.asarray(currents, dtype=np.float64)
        if currents.ndim != 2:
            raise ValueError(
                "currents must have shape (traces, samples), got %r"
                % (currents.shape,)
            )
        c1, c2, b0 = self.recurrence_coefficients()
        op = kernels.dispatch("pdn", "integrate_batch")
        return op(currents, c1, c2, b0)

    def simulate(
        self,
        region_currents: Mapping[str, np.ndarray],
        noise: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Simulate supply voltage seen in every region.

        Args:
            region_currents: current waveform (amperes, one sample per
                tick) per source region.  Waveforms must share a length.
            noise: include ambient supply noise.

        Returns:
            per-region voltage waveforms of the same length.
        """
        lengths = {len(w) for w in region_currents.values()}
        if len(lengths) > 1:
            raise ValueError("current waveforms must share a length")
        if not lengths:
            raise ValueError("no current waveforms supplied")
        num_samples = lengths.pop()

        sources = {
            name: np.asarray(w, dtype=float)
            for name, w in region_currents.items()
        }
        voltages: Dict[str, np.ndarray] = {}
        for observer in self.regions:
            total = np.zeros(num_samples)
            for source_name, waveform in sources.items():
                total += self.coupling_weight(observer, source_name) * waveform
            droop = self._integrate(total)
            v = self.params.nominal_voltage - droop
            if noise and self.params.noise_sigma_v > 0:
                rng = make_rng(self._seed, "pdn-noise", observer)
                v = v + rng.normal(
                    0.0, self.params.noise_sigma_v, size=num_samples
                )
            voltages[observer] = v
        return voltages

    def step_response(self, num_samples: int, amplitude_a: float = 1.0
                      ) -> np.ndarray:
        """Noise-free voltage response to a current step at sample 0."""
        current = np.full(num_samples, float(amplitude_a))
        return self.simulate({self.regions[0]: current}, noise=False)[
            self.regions[0]
        ]

"""Second-order transient model of the on-die power distribution network.

The PDN couples all tenants of the FPGA electrically (paper Sec. II):
current drawn by one region produces supply-voltage fluctuations that
are observable everywhere on the die.  A chip-package PDN behaves, to
first order, like a series RLC network: a current step produces a
voltage *droop* followed by damped ringing, and a sudden current release
produces an *overshoot* — exactly the shapes in the paper's Fig. 6.

We model the supply seen by each region as::

    v(t) = V_nom - z(t) + ambient_noise
    z'' + 2*zeta*omega0*z' + omega0^2 * z = omega0^2 * R * i(t)

where ``i(t)`` is the total current drawn (sum over regions, weighted
by inter-region coupling), ``R`` the effective PDN resistance, and
``omega0 = 2*pi*f_res`` the package resonance.  The ODE is integrated
with a semi-implicit Euler scheme at the simulation sample rate.

Typical FPGA PDN resonances sit in the 100 kHz – 10 MHz band; the
default 2 MHz makes a 4 MHz RO on/off pattern produce the two clearly
separated droop/overshoot events of Fig. 6 when sampled at 150 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.util.rng import make_rng


@dataclass(frozen=True)
class PDNParameters:
    """Electrical parameters of the simulated PDN.

    Attributes:
        nominal_voltage: idle core supply in volts.
        resistance_ohm: effective PDN resistance converting current
            (amperes) into static IR droop (volts).
        resonance_hz: RLC resonance frequency of the chip+package.
        damping: damping ratio ``zeta`` (< 1: underdamped, rings).
        noise_sigma_v: standard deviation of ambient supply noise per
            sample (regulator ripple, unrelated tenant activity).
    """

    nominal_voltage: float = 1.0
    resistance_ohm: float = 0.08
    resonance_hz: float = 2.0e6
    damping: float = 0.2
    noise_sigma_v: float = 0.0012

    def __post_init__(self) -> None:
        if self.resistance_ohm < 0:
            raise ValueError("resistance must be non-negative")
        if self.resonance_hz <= 0:
            raise ValueError("resonance frequency must be positive")
        if not 0 < self.damping:
            raise ValueError("damping ratio must be positive")
        if self.noise_sigma_v < 0:
            raise ValueError("noise sigma must be non-negative")


class PDNModel:
    """Transient PDN simulator shared by all tenants.

    Args:
        params: electrical parameters.
        sample_rate_hz: integration/sampling rate.  The sensing
            experiments run at the sensors' effective sample rate
            (150 MHz), which comfortably resolves a ~MHz resonance.
        regions: region names; currents are summed with pairwise
            coupling before driving the shared PDN state.
        coupling: mapping ``(observer, source) -> weight``; defaults to
            1.0 (fully shared PDN).  Values < 1 model partial supply
            separation between die regions.
        seed: seed for ambient noise.

    Example:
        >>> pdn = PDNModel(sample_rate_hz=150e6, seed=7)
        >>> current = np.zeros(300); current[100:] = 0.5
        >>> v = pdn.simulate({"shared": current})["shared"]
        >>> v[:90].mean() > v[120:180].mean()  # droop after the step
        True
    """

    def __init__(
        self,
        params: PDNParameters = PDNParameters(),
        sample_rate_hz: float = 150e6,
        regions: Sequence[str] = ("shared",),
        coupling: Optional[Mapping[tuple, float]] = None,
        seed: int = 0,
    ):
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if not regions:
            raise ValueError("need at least one region")
        self.params = params
        self.sample_rate_hz = sample_rate_hz
        self.regions = tuple(regions)
        self._coupling = dict(coupling or {})
        self._seed = seed

    def coupling_weight(self, observer: str, source: str) -> float:
        """Coupling from a current source region to an observer region."""
        return self._coupling.get((observer, source), 1.0)

    def _integrate(self, current: np.ndarray) -> np.ndarray:
        """Integrate the RLC droop response for one current waveform."""
        p = self.params
        dt = 1.0 / self.sample_rate_hz
        omega = 2.0 * np.pi * p.resonance_hz
        droop = np.empty_like(current)
        z = 0.0   # droop (volts)
        dz = 0.0  # droop rate
        two_zeta_omega = 2.0 * p.damping * omega
        omega_sq = omega * omega
        for n in range(current.shape[0]):
            target = p.resistance_ohm * current[n]
            ddz = omega_sq * (target - z) - two_zeta_omega * dz
            dz += ddz * dt
            z += dz * dt
            droop[n] = z
        return droop

    def simulate(
        self,
        region_currents: Mapping[str, np.ndarray],
        noise: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Simulate supply voltage seen in every region.

        Args:
            region_currents: current waveform (amperes, one sample per
                tick) per source region.  Waveforms must share a length.
            noise: include ambient supply noise.

        Returns:
            per-region voltage waveforms of the same length.
        """
        lengths = {len(w) for w in region_currents.values()}
        if len(lengths) > 1:
            raise ValueError("current waveforms must share a length")
        if not lengths:
            raise ValueError("no current waveforms supplied")
        num_samples = lengths.pop()

        sources = {
            name: np.asarray(w, dtype=float)
            for name, w in region_currents.items()
        }
        voltages: Dict[str, np.ndarray] = {}
        for observer in self.regions:
            total = np.zeros(num_samples)
            for source_name, waveform in sources.items():
                total += self.coupling_weight(observer, source_name) * waveform
            droop = self._integrate(total)
            v = self.params.nominal_voltage - droop
            if noise and self.params.noise_sigma_v > 0:
                rng = make_rng(self._seed, "pdn-noise", observer)
                v = v + rng.normal(
                    0.0, self.params.noise_sigma_v, size=num_samples
                )
            voltages[observer] = v
        return voltages

    def step_response(self, num_samples: int, amplitude_a: float = 1.0
                      ) -> np.ndarray:
        """Noise-free voltage response to a current step at sample 0."""
        current = np.full(num_samples, float(amplitude_a))
        return self.simulate({self.regions[0]: current}, noise=False)[
            self.regions[0]
        ]

"""Current-draw waveform generators ("aggressors") for the PDN model.

An aggressor converts an activity schedule into a current waveform
sampled at the PDN rate.  Two aggressors matter for the paper:

* the 8000-RO array, used as a *controlled* source of strong voltage
  fluctuations (gradually enabled, suddenly disabled at 4 MHz), and
* the AES module, whose round-dependent switching current is the
  *secret-correlated* signal the attack extracts.

Both are expressed through :class:`CurrentSchedule`, a piecewise
description compiled to a sample array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class CurrentSchedule:
    """Piecewise-linear current schedule compiled to samples.

    Segments are (start_sample, end_sample, start_current, end_current)
    with linear interpolation inside each segment; samples not covered
    by any segment draw ``idle_current``.
    """

    num_samples: int
    idle_current: float = 0.0
    _segments: List[Tuple[int, int, float, float]] = field(
        default_factory=list
    )

    def hold(self, start: int, end: int, amperes: float) -> "CurrentSchedule":
        """Draw a constant current over ``[start, end)``."""
        return self.ramp(start, end, amperes, amperes)

    def ramp(
        self, start: int, end: int, from_a: float, to_a: float
    ) -> "CurrentSchedule":
        """Linearly ramp the current over ``[start, end)``."""
        if not 0 <= start < end <= self.num_samples:
            raise ValueError(
                "segment [%d, %d) outside 0..%d"
                % (start, end, self.num_samples)
            )
        self._segments.append((start, end, float(from_a), float(to_a)))
        return self

    def compile(self) -> np.ndarray:
        """Render the schedule to a current waveform (amperes)."""
        waveform = np.full(self.num_samples, float(self.idle_current))
        for start, end, from_a, to_a in self._segments:
            span = end - start
            waveform[start:end] += np.linspace(
                from_a, to_a, span, endpoint=False
            )
        return waveform


@dataclass(frozen=True)
class ROAggressorSchedule:
    """The paper's RO activity pattern (Sec. V-A, Figs. 5/6/14).

    ``num_ros`` ring oscillators are *gradually* enabled over
    ``ramp_samples`` and then *suddenly* disabled, repeating with period
    ``period_samples``.  At a 150 MHz sample rate, a 4 MHz on/off
    pattern corresponds to ``period_samples = 37`` (the paper's Fig. 6
    shows the resulting droop + overshoot pairs).

    Attributes:
        num_ros: ring-oscillator count (8000 in the paper).
        current_per_ro_a: average supply current per enabled RO.
        start_sample: first sample of the first enable ramp.
        ramp_samples: length of the gradual enable ramp.
        period_samples: distance between successive enable ramps.
        repetitions: number of on/off cycles.
    """

    num_ros: int = 8000
    current_per_ro_a: float = 220e-6
    start_sample: int = 40
    ramp_samples: int = 30
    period_samples: int = 40
    repetitions: int = 2

    @property
    def peak_current_a(self) -> float:
        return self.num_ros * self.current_per_ro_a

    def current_waveform(self, num_samples: int) -> np.ndarray:
        """Compile the on/off pattern to a current waveform."""
        schedule = CurrentSchedule(num_samples)
        for k in range(self.repetitions):
            start = self.start_sample + k * self.period_samples
            end = min(start + self.ramp_samples, num_samples)
            if start >= num_samples:
                break
            schedule.ramp(start, end, 0.0, self.peak_current_a)
            # Sudden disable: no segment after `end`, current falls to 0.
        return schedule.compile()

    def enabled_count(self, num_samples: int) -> np.ndarray:
        """Number of enabled ROs at each sample (for reporting)."""
        waveform = self.current_waveform(num_samples)
        return np.round(waveform / self.current_per_ro_a).astype(int)


def aes_current_waveform(
    round_hd: Sequence[int],
    num_samples: int,
    start_sample: int,
    samples_per_cycle: float,
    current_per_bit_a: float = 6.25e-3,
    static_current_a: float = 0.02,
) -> np.ndarray:
    """Current waveform of an AES encryption.

    Args:
        round_hd: Hamming distance of the AES state register per clock
            cycle (from :mod:`repro.aes.leakage`).
        num_samples: waveform length at the PDN sample rate.
        start_sample: sample at which the encryption starts.
        samples_per_cycle: PDN samples per AES clock cycle (1.5 for
            100 MHz AES sampled at 150 MHz).
        current_per_bit_a: dynamic current per flipped state bit.
        static_current_a: module static + control current while active.

    Returns:
        waveform in amperes.
    """
    waveform = np.zeros(num_samples)
    for cycle, hd in enumerate(round_hd):
        start = int(round(start_sample + cycle * samples_per_cycle))
        end = int(round(start_sample + (cycle + 1) * samples_per_cycle))
        if start >= num_samples:
            break
        end = min(max(end, start + 1), num_samples)
        waveform[start:end] += static_current_a + current_per_bit_a * hd
    return waveform


def aes_current_waveform_batch(
    round_hd: np.ndarray,
    num_samples: int,
    start_sample: int,
    samples_per_cycle: float,
    current_per_bit_a: float = 6.25e-3,
    static_current_a: float = 0.02,
) -> np.ndarray:
    """Current waveforms of a batch of AES encryptions.

    Vectorized counterpart of :func:`aes_current_waveform`: each cycle
    maps to the same ``[start, end)`` sample span for every trace (the
    span depends only on the cycle index), so one slice-assignment per
    cycle reproduces the per-trace loop bit for bit.

    Args:
        round_hd: int array ``(traces, cycles)`` of per-cycle state
            Hamming distances (e.g. from
            :meth:`repro.aes.batch.BatchedAES128.cycle_hd`).
        num_samples / start_sample / samples_per_cycle /
            current_per_bit_a / static_current_a: as in
            :func:`aes_current_waveform`.

    Returns:
        float array ``(traces, num_samples)`` in amperes; row ``t`` is
        identical to ``aes_current_waveform(round_hd[t], ...)``.
    """
    hd = np.asarray(round_hd, dtype=np.float64)
    if hd.ndim != 2:
        raise ValueError(
            "round_hd must have shape (traces, cycles), got %r"
            % (hd.shape,)
        )
    waveforms = np.zeros((hd.shape[0], num_samples))
    for cycle in range(hd.shape[1]):
        start = int(round(start_sample + cycle * samples_per_cycle))
        end = int(round(start_sample + (cycle + 1) * samples_per_cycle))
        if start >= num_samples:
            break
        end = min(max(end, start + 1), num_samples)
        waveforms[:, start:end] += (
            static_current_a + current_per_bit_a * hd[:, cycle]
        )[:, None]
    return waveforms

"""Power-distribution-network substrate.

Models the shared electrical medium of the multi-tenant FPGA: a
second-order RLC transient response (:class:`PDNModel`) driven by
current-waveform aggressors (RO array, AES module).  The voltage
waveforms it produces feed both the reference TDC sensor and the
benign-logic sensors.
"""

from repro.pdn.aggressors import (
    CurrentSchedule,
    ROAggressorSchedule,
    aes_current_waveform,
    aes_current_waveform_batch,
)
from repro.pdn.model import PDNModel, PDNParameters

__all__ = [
    "CurrentSchedule",
    "PDNModel",
    "PDNParameters",
    "ROAggressorSchedule",
    "aes_current_waveform",
    "aes_current_waveform_batch",
]

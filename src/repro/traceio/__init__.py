"""Trace-set containers and persistence.

The paper's host script stores "tuples of plaintexts and ciphertexts"
with raw traces, plus "a separate file with traces only containing
relevant bits for the CPA" (Sec. IV).  :class:`TraceSet` mirrors that
layout and round-trips through compressed ``.npz`` files.
"""

from repro.traceio.traces import (
    TraceIOError,
    TraceSet,
    load_traces,
    save_traces,
)

__all__ = ["TraceIOError", "TraceSet", "load_traces", "save_traces"]

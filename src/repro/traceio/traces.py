"""Trace-set container with crash-safe ``.npz`` persistence."""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.util.errors import ReproError
from repro.util.fileio import atomic_write


class TraceIOError(ReproError):
    """A trace file is missing, truncated, or not a trace set.

    Raised by :func:`load_traces` instead of the raw numpy/zipfile
    errors so campaign tooling can report one actionable line (the
    path and what is wrong with it) rather than a traceback.
    """

    def __init__(self, path: str, reason: str):
        super().__init__("trace file %s: %s" % (path, reason))
        self.path = path
        self.reason = reason


@dataclass
class TraceSet:
    """A captured side-channel trace campaign.

    Attributes:
        ciphertexts: (N, 16) uint8 ciphertext blocks.
        leakage: (N,) or (N, S) measured sensor values (reduced traces
            or raw endpoint words).
        metadata: free-form campaign description (sensor name, clock
            rates, seeds, selected bits...).  Values must be
            JSON-serializable.
    """

    ciphertexts: np.ndarray
    leakage: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ct = np.asarray(self.ciphertexts)
        lk = np.asarray(self.leakage)
        if ct.ndim != 2 or ct.shape[1] != 16:
            raise ValueError("ciphertexts must have shape (N, 16)")
        if lk.shape[0] != ct.shape[0]:
            raise ValueError(
                "leakage has %d rows but ciphertexts %d"
                % (lk.shape[0], ct.shape[0])
            )
        self.ciphertexts = ct.astype(np.uint8)
        self.leakage = lk

    @property
    def num_traces(self) -> int:
        return int(self.ciphertexts.shape[0])

    def subset(self, count: int) -> "TraceSet":
        """First ``count`` traces (e.g. for progressive analysis)."""
        if not 0 < count <= self.num_traces:
            raise ValueError(
                "count must be 1..%d, got %d" % (self.num_traces, count)
            )
        return TraceSet(
            self.ciphertexts[:count],
            self.leakage[:count],
            dict(self.metadata),
        )

    def __len__(self) -> int:
        return self.num_traces


def save_traces(path: str, traces: TraceSet) -> None:
    """Write a trace set to a compressed ``.npz`` file, atomically.

    The payload is staged in a temporary file and renamed over
    ``path`` (:func:`repro.util.fileio.atomic_write`), so a crash
    mid-save can never truncate a previously good trace file.  As with
    ``np.savez_compressed``, a missing ``.npz`` suffix is appended.
    """
    if not path.endswith(".npz"):
        path += ".npz"
    atomic_write(
        path,
        lambda handle: np.savez_compressed(
            handle,
            ciphertexts=traces.ciphertexts,
            leakage=traces.leakage,
            metadata=np.frombuffer(
                json.dumps(
                    traces.metadata, sort_keys=True
                ).encode("utf-8"),
                dtype=np.uint8,
            ),
        ),
    )


def load_traces(path: str) -> TraceSet:
    """Read a trace set written by :func:`save_traces`.

    Raises:
        TraceIOError: the file is missing, truncated/corrupt, or is a
            valid ``.npz`` that does not contain a trace set.
    """
    try:
        with np.load(path) as data:
            metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
            return TraceSet(
                ciphertexts=data["ciphertexts"],
                leakage=data["leakage"],
                metadata=metadata,
            )
    except FileNotFoundError as exc:
        raise TraceIOError(path, "no such file") from exc
    except KeyError as exc:
        raise TraceIOError(
            path, "not a trace set (%s)" % exc.args[0]
        ) from exc
    except (
        zipfile.BadZipFile,
        ValueError,
        EOFError,
        OSError,
        json.JSONDecodeError,
        UnicodeDecodeError,
    ) as exc:
        raise TraceIOError(
            path, "unreadable or corrupt (%s)" % exc
        ) from exc

"""Bit-exact AES-128 (FIPS-197) in pure Python.

This is the victim workload: a co-tenant AES-128 encryption core.  The
implementation favours clarity over speed — bulk trace generation never
re-runs full encryptions per trace; it uses the vectorized last-round
model in :mod:`repro.aes.leakage` instead — but it is complete
(encrypt, decrypt, key schedule, round-state introspection) and is
validated against the FIPS-197 and NIST test vectors in the test suite.

State is represented as 16-byte ``bytes`` in the standard column-major
AES order: byte ``i`` sits at row ``i % 4``, column ``i // 4``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: Forward S-box (FIPS-197 Fig. 7).
SBOX: Tuple[int, ...] = (
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5,
    0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
    0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
    0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC,
    0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A,
    0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
    0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
    0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B,
    0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85,
    0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
    0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
    0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17,
    0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88,
    0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
    0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9,
    0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6,
    0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
    0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94,
    0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68,
    0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
)

#: Inverse S-box, derived from :data:`SBOX`.
INV_SBOX: Tuple[int, ...] = tuple(
    SBOX.index(i) for i in range(256)
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

#: Cycles per round of the modeled 32-bit datapath (4 SBoxes/cycle).
CYCLES_PER_ROUND = 4


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) with the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


def sub_bytes(state: Sequence[int]) -> List[int]:
    """Apply the S-box to every state byte."""
    return [SBOX[b] for b in state]


def inv_sub_bytes(state: Sequence[int]) -> List[int]:
    """Apply the inverse S-box to every state byte."""
    return [INV_SBOX[b] for b in state]


def shift_rows(state: Sequence[int]) -> List[int]:
    """Cyclically shift row ``r`` left by ``r`` (column-major layout)."""
    out = [0] * 16
    for col in range(4):
        for row in range(4):
            out[row + 4 * col] = state[row + 4 * ((col + row) % 4)]
    return out


def inv_shift_rows(state: Sequence[int]) -> List[int]:
    """Inverse of :func:`shift_rows`."""
    out = [0] * 16
    for col in range(4):
        for row in range(4):
            out[row + 4 * ((col + row) % 4)] = state[row + 4 * col]
    return out


def mix_columns(state: Sequence[int]) -> List[int]:
    """MixColumns over all four state columns."""
    out = [0] * 16
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3)
        out[4 * col + 3] = _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2)
    return out


def inv_mix_columns(state: Sequence[int]) -> List[int]:
    """Inverse MixColumns."""
    out = [0] * 16
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = (
            _gmul(a[0], 14) ^ _gmul(a[1], 11) ^ _gmul(a[2], 13) ^ _gmul(a[3], 9)
        )
        out[4 * col + 1] = (
            _gmul(a[0], 9) ^ _gmul(a[1], 14) ^ _gmul(a[2], 11) ^ _gmul(a[3], 13)
        )
        out[4 * col + 2] = (
            _gmul(a[0], 13) ^ _gmul(a[1], 9) ^ _gmul(a[2], 14) ^ _gmul(a[3], 11)
        )
        out[4 * col + 3] = (
            _gmul(a[0], 11) ^ _gmul(a[1], 13) ^ _gmul(a[2], 9) ^ _gmul(a[3], 14)
        )
    return out


def add_round_key(state: Sequence[int], round_key: Sequence[int]) -> List[int]:
    """XOR the round key into the state."""
    return [s ^ k for s, k in zip(state, round_key)]


def expand_key(key: bytes) -> List[List[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes, got %d" % len(key))
    words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [
        [b for word in words[4 * r : 4 * r + 4] for b in word]
        for r in range(11)
    ]


def invert_key_schedule(last_round_key: bytes) -> bytes:
    """Recover the AES-128 master key from the round-10 key.

    The AES-128 key schedule is invertible: each word is
    ``w[i] = w[i-4] XOR f(w[i-1])`` (with the RotWord/SubWord/Rcon
    nonlinearity only at ``i % 4 == 0``), so knowing any four
    consecutive words — in particular the last round key — determines
    all the others.  This is why the paper's last-round CPA, which
    recovers round-10 key bytes, breaks the whole cipher.

    >>> key = bytes(range(16))
    >>> invert_key_schedule(bytes(expand_key(key)[10])) == key
    True
    """
    if len(last_round_key) != 16:
        raise ValueError(
            "round key must be 16 bytes, got %d" % len(last_round_key)
        )
    words: List[List[int]] = [[0, 0, 0, 0] for _ in range(44)]
    for i in range(4):
        words[40 + i] = list(last_round_key[4 * i : 4 * i + 4])
    for i in range(43, 3, -1):
        previous = words[i - 1]
        if i % 4 == 0:
            temp = previous[1:] + previous[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        else:
            temp = previous
        words[i - 4] = [a ^ b for a, b in zip(words[i], temp)]
    return bytes(b for word in words[0:4] for b in word)


class AES128:
    """AES-128 cipher with round-state introspection.

    Example:
        >>> cipher = AES128(bytes(range(16)))
        >>> pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        >>> cipher.decrypt(cipher.encrypt(pt)) == pt
        True
    """

    def __init__(self, key: bytes):
        self.round_keys = expand_key(key)

    @property
    def last_round_key(self) -> bytes:
        """Round-10 key — the target of the paper's last-round CPA."""
        return bytes(self.round_keys[10])

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        return bytes(self.round_states(plaintext)[-1])

    def round_states(self, plaintext: bytes) -> List[List[int]]:
        """All register states of an encryption.

        Returns 12 states: the initial AddRoundKey result, the state
        after each of rounds 1..10 (the last entry is the ciphertext).
        Index 0 is the post-whitening state; index ``r`` the state after
        round ``r``.  The first element of the returned list is the
        plaintext itself (pre-whitening), so ``len(...) == 12``.
        """
        if len(plaintext) != 16:
            raise ValueError(
                "plaintext must be 16 bytes, got %d" % len(plaintext)
            )
        states: List[List[int]] = [list(plaintext)]
        state = add_round_key(list(plaintext), self.round_keys[0])
        states.append(list(state))
        for round_index in range(1, 10):
            state = sub_bytes(state)
            state = shift_rows(state)
            state = mix_columns(state)
            state = add_round_key(state, self.round_keys[round_index])
            states.append(list(state))
        state = sub_bytes(state)
        state = shift_rows(state)
        state = add_round_key(state, self.round_keys[10])
        states.append(list(state))
        return states

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(ciphertext) != 16:
            raise ValueError(
                "ciphertext must be 16 bytes, got %d" % len(ciphertext)
            )
        state = add_round_key(list(ciphertext), self.round_keys[10])
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        for round_index in range(9, 0, -1):
            state = add_round_key(state, self.round_keys[round_index])
            state = inv_mix_columns(state)
            state = inv_shift_rows(state)
            state = inv_sub_bytes(state)
        state = add_round_key(state, self.round_keys[0])
        return bytes(state)

"""The AES-128 victim: cipher, datapath activity model, leakage model.

:class:`AES128` is the bit-exact reference cipher; :mod:`repro.aes.datapath`
models the paper's 32-bit-datapath core (4 parallel SBoxes, 100 MHz);
:mod:`repro.aes.leakage` provides the vectorized last-round
Hamming-distance leakage used by bulk CPA trace generation.
"""

from repro.aes.aes128 import (
    INV_SBOX,
    invert_key_schedule,
    SBOX,
    AES128,
    add_round_key,
    expand_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    sub_bytes,
)
from repro.aes.batch import (
    GMUL2_TABLE,
    GMUL3_TABLE,
    POPCOUNT8_TABLE,
    BatchedAES128,
    cycle_hd_from_states,
    encryption_cycle_hd_batch,
)
from repro.aes.datapath import (
    DatapathSchedule,
    column_hd,
    encryption_cycle_hd,
)
from repro.aes.masking import MaskedLeakageModel
from repro.aes.leakage import (
    INV_SBOX_TABLE,
    SBOX_TABLE,
    SHIFT_ROWS_SOURCE,
    LeakageModel,
    destination_of_source,
    last_round_activity,
    last_round_byte_hd,
    last_round_hd,
    last_round_hw,
    random_ciphertexts,
    state_before_final_sbox,
    verify_fast_path,
)

__all__ = [
    "AES128",
    "BatchedAES128",
    "DatapathSchedule",
    "GMUL2_TABLE",
    "GMUL3_TABLE",
    "POPCOUNT8_TABLE",
    "cycle_hd_from_states",
    "encryption_cycle_hd_batch",
    "INV_SBOX",
    "INV_SBOX_TABLE",
    "LeakageModel",
    "MaskedLeakageModel",
    "SBOX",
    "SBOX_TABLE",
    "add_round_key",
    "column_hd",
    "encryption_cycle_hd",
    "expand_key",
    "inv_mix_columns",
    "inv_shift_rows",
    "inv_sub_bytes",
    "invert_key_schedule",
    "destination_of_source",
    "last_round_activity",
    "last_round_byte_hd",
    "last_round_hd",
    "last_round_hw",
    "SHIFT_ROWS_SOURCE",
    "mix_columns",
    "random_ciphertexts",
    "shift_rows",
    "state_before_final_sbox",
    "sub_bytes",
    "verify_fast_path",
]

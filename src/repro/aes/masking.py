"""First-order boolean masking of the AES victim.

*Masking* is one of the two classic power-analysis countermeasures the
paper's related work cites (Chari et al. 1999; dedicated cloud-FPGA
variants in Krautter ICCAD 2019).  A first-order masked implementation
never processes the state directly: it processes ``s XOR m`` for a
fresh uniformly random mask ``m`` per execution (with the SBox
recomputed to be mask-compatible), so the switching activity of any
single wire or register is statistically independent of the secret
state.

:class:`MaskedLeakageModel` models such a victim: the last-round
register activity is computed on masked shares.  First-order CPA on
the paper's single-bit hypothesis then finds no correlation — which
the countermeasure bench verifies empirically.  (Second-order attacks
combining both shares' leakage would still apply; modeling those is
out of scope of the paper.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aes.leakage import (
    LeakageModel,
    _POPCOUNT8,
    _column_byte_indices,
    state_before_final_sbox,
)
from repro.util.rng import make_rng


@dataclass
class MaskedLeakageModel(LeakageModel):
    """Leakage of a first-order boolean-masked AES core.

    The register holds the masked share ``s XOR m``; the mask share is
    processed in a physically separate register bank whose activity is
    mask-only (uniform), modeled by the ``mask_share_weight`` term.

    Attributes:
        mask_seed: seed of the per-trace mask stream (the victim's
            internal RNG — unknown to the attacker).
        mask_share_weight: relative activity contribution of the mask
            share datapath.
    """

    mask_seed: int = 1234
    mask_share_weight: float = 1.0

    def activity(
        self, ciphertexts: np.ndarray, last_round_key: bytes
    ) -> np.ndarray:
        """Switching activity of the masked implementation.

        The input state is masked with ``m``; the round output is
        re-masked with a *fresh* ``m'`` (as real masked cores do —
        reusing the mask would leave the register transition
        ``(s XOR m) XOR (ct XOR m) = s XOR ct`` unmasked).
        """
        ct = np.asarray(ciphertexts, dtype=np.uint8)
        s9 = state_before_final_sbox(ct, last_round_key)
        rng = make_rng(self.mask_seed, "aes-masks")
        masks = rng.integers(0, 256, size=ct.shape, dtype=np.uint8)
        fresh = rng.integers(0, 256, size=ct.shape, dtype=np.uint8)
        span = _column_byte_indices(self.column)

        masked_state = s9 ^ masks
        masked_out = ct ^ fresh
        total = np.zeros(ct.shape[0])
        if self.value_weight:
            total = total + self.value_weight * _POPCOUNT8[
                masked_state[:, span]
            ].astype(np.int64).sum(axis=1)
        if self.transition_weight:
            total = total + self.transition_weight * _POPCOUNT8[
                masked_state[:, span] ^ masked_out[:, span]
            ].astype(np.int64).sum(axis=1)
        if self.mask_share_weight:
            total = total + self.mask_share_weight * _POPCOUNT8[
                masks[:, span]
            ].astype(np.int64).sum(axis=1)
        return total

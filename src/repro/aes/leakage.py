"""Vectorized last-round leakage model of the AES victim.

CPA campaigns need 10^5–10^6 traces; re-running the pure-Python cipher
per trace would dominate runtime.  This module exploits two facts:

* for uniformly random plaintexts the ciphertexts are uniformly random
  16-byte blocks, and
* the last AES round has no MixColumns, so the state *before* the final
  SubBytes is recoverable from the ciphertext and the last round key
  alone: ``s9 = InvSBox(InvShiftRows(ct XOR k10))``.

Bulk generation therefore draws ciphertexts directly and computes the
round-10 register transition Hamming distance — the victim's
secret-correlated switching activity — entirely in numpy.  The full
cipher in :mod:`repro.aes.aes128` remains the ground truth; the test
suite checks this fast path against it byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.aes.aes128 import INV_SBOX, SBOX, AES128
from repro.util.rng import make_rng

#: numpy lookup tables.
SBOX_TABLE = np.array(SBOX, dtype=np.uint8)
INV_SBOX_TABLE = np.array(INV_SBOX, dtype=np.uint8)
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

def _build_shift_rows_source() -> np.ndarray:
    """For column-major byte index i, the pre-ShiftRows index that ends
    up at position i after ShiftRows."""
    source = np.zeros(16, dtype=np.int64)
    for col in range(4):
        for row in range(4):
            source[row + 4 * col] = row + 4 * ((col + row) % 4)
    return source


SHIFT_ROWS_SOURCE = _build_shift_rows_source()


def state_before_final_sbox(
    ciphertexts: np.ndarray, last_round_key: bytes
) -> np.ndarray:
    """Recover the round-9 state from ciphertexts (vectorized).

    Args:
        ciphertexts: uint8 array of shape (N, 16).
        last_round_key: 16-byte round-10 key.

    Returns:
        uint8 array (N, 16): the state before the final SubBytes, in
        standard column-major byte order.
    """
    ct = np.asarray(ciphertexts, dtype=np.uint8)
    if ct.ndim != 2 or ct.shape[1] != 16:
        raise ValueError("ciphertexts must have shape (N, 16)")
    key = np.frombuffer(bytes(last_round_key), dtype=np.uint8)
    if key.shape[0] != 16:
        raise ValueError("last round key must be 16 bytes")
    after_shift = ct ^ key  # undo AddRoundKey
    # Undo ShiftRows: byte i of the shifted state came from
    # SHIFT_ROWS_SOURCE[i]; write it back to its source position.
    before_shift = np.empty_like(after_shift)
    before_shift[:, SHIFT_ROWS_SOURCE] = after_shift
    return INV_SBOX_TABLE[before_shift]


def last_round_byte_hd(
    ciphertexts: np.ndarray, last_round_key: bytes
) -> np.ndarray:
    """Per-byte Hamming distance of the round-10 register transition.

    The state register is overwritten in place: cell ``i`` holds
    ``s9[i]`` and, after the final round, the ciphertext byte ``ct[i]``
    (its own content is SubBytes'd and *shifted away* to another cell,
    while a different cell's result is shifted in).

    Returns:
        int array (N, 16) of per-cell Hamming distances.
    """
    ct = np.asarray(ciphertexts, dtype=np.uint8)
    s9 = state_before_final_sbox(ct, last_round_key)
    return _POPCOUNT8[s9 ^ ct].astype(np.int64)


def destination_of_source() -> np.ndarray:
    """Post-ShiftRows destination index for each byte position.

    ``destination_of_source()[s]`` is the position the content of state
    cell ``s`` occupies after ShiftRows; equivalently, guessing key
    byte ``j`` of the last round key targets the pre-SBox state byte at
    position ``SHIFT_ROWS_SOURCE[j]``.
    """
    destination = np.empty(16, dtype=np.int64)
    for d in range(16):
        destination[SHIFT_ROWS_SOURCE[d]] = d
    return destination


def last_round_hd(
    ciphertexts: np.ndarray, last_round_key: bytes
) -> np.ndarray:
    """Total round-10 register-transition Hamming distance per trace."""
    return last_round_byte_hd(ciphertexts, last_round_key).sum(axis=1)


def last_round_hw(
    ciphertexts: np.ndarray, last_round_key: bytes
) -> np.ndarray:
    """Total Hamming weight of the state before the final SubBytes.

    The combinational logic of the final round (the four parallel
    SBoxes of the 32-bit datapath) switches proportionally to the data
    it evaluates; the Hamming weight of the pre-SBox state is the
    classic first-order model of that *value* leakage.  This is the
    component the paper's single-bit mask model correlates with.
    """
    ct = np.asarray(ciphertexts, dtype=np.uint8)
    s9 = state_before_final_sbox(ct, last_round_key)
    return _POPCOUNT8[s9].astype(np.int64).sum(axis=1)


def _column_byte_indices(column: Optional[int]) -> slice:
    """Byte range of one state column (None = all 16 bytes)."""
    if column is None:
        return slice(0, 16)
    if not 0 <= column < 4:
        raise ValueError("column must be 0..3 or None, got %r" % (column,))
    return slice(4 * column, 4 * column + 4)


def last_round_activity(
    ciphertexts: np.ndarray,
    last_round_key: bytes,
    value_weight: float = 1.0,
    transition_weight: float = 0.5,
    column: Optional[int] = 3,
) -> np.ndarray:
    """Last-round switching activity (bit-equivalents) per trace.

    ``value_weight`` scales the combinational (Hamming-weight) leakage
    of the state entering the final SBoxes; ``transition_weight`` the
    register-overwrite (Hamming-distance) leakage.  Both components are
    present in CMOS; their ratio is a property of the implementation.

    ``column`` restricts the activity to one 32-bit state column: the
    paper's victim has a 32-bit datapath, so at the sensor sample
    aligned with a given cycle of round 10 only the four bytes of that
    column are being substituted and written back.  Guessing key byte 3
    (the paper's target) predicts the pre-SBox state cell 15 — its
    ShiftRows source — which lives in column 3, the default here.
    Pass ``None`` to model a full-width (128-bit datapath) victim.
    """
    ct = np.asarray(ciphertexts, dtype=np.uint8)
    s9 = state_before_final_sbox(ct, last_round_key)
    span = _column_byte_indices(column)
    total = np.zeros(ct.shape[0])
    if value_weight:
        total = total + value_weight * _POPCOUNT8[s9[:, span]].astype(
            np.int64
        ).sum(axis=1)
    if transition_weight:
        total = total + transition_weight * _POPCOUNT8[
            s9[:, span] ^ ct[:, span]
        ].astype(np.int64).sum(axis=1)
    return total


@dataclass
class LeakageModel:
    """Converts victim activity into supply-voltage disturbance.

    The single-sample model used by CPA campaigns: at the sensor sample
    aligned with the last AES round, the supply voltage is::

        v = v_idle - droop_per_bit * activity + N(0, noise_sigma)

    where ``activity`` combines the combinational value leakage and the
    register-transition leakage of the processed state column
    (:func:`last_round_activity`).

    Attributes:
        droop_per_bit_v: voltage droop per switching bit-equivalent
            (per-bit switching current times local PDN impedance).
        noise_sigma_v: ambient supply noise at the sampling instant.
        v_idle: idle supply voltage.
        value_weight: weight of the combinational (HW) component.
        transition_weight: weight of the register (HD) component.
        column: the 32-bit datapath column active at the sample
            (3 covers cell 15, the pre-SBox cell targeted when guessing
            key byte 3); None = full state.
    """

    droop_per_bit_v: float = 5.0e-4
    noise_sigma_v: float = 8.0e-4
    v_idle: float = 1.0
    value_weight: float = 1.0
    transition_weight: float = 0.5
    column: Optional[int] = 3

    def activity(
        self, ciphertexts: np.ndarray, last_round_key: bytes
    ) -> np.ndarray:
        """Last-round switching activity per trace (bit-equivalents)."""
        return last_round_activity(
            ciphertexts,
            last_round_key,
            value_weight=self.value_weight,
            transition_weight=self.transition_weight,
            column=self.column,
        )

    def voltages(
        self,
        ciphertexts: np.ndarray,
        last_round_key: bytes,
        seed: int = 0,
    ) -> np.ndarray:
        """Supply voltage at the last-round sample for each trace."""
        activity = self.activity(ciphertexts, last_round_key)
        rng = make_rng(seed, "leakage-noise")
        noise = rng.normal(0.0, self.noise_sigma_v, size=activity.shape[0])
        return self.v_idle - self.droop_per_bit_v * activity + noise

    def column_voltages(
        self,
        ciphertexts: np.ndarray,
        last_round_key: bytes,
        seed: int = 0,
    ) -> np.ndarray:
        """Supply voltage at each of the four last-round cycles.

        The 32-bit datapath processes one state column per cycle, so a
        150 MHz sensor sees four distinct last-round samples per
        encryption, each reflecting one column's switching activity.
        Attacking all 16 key bytes (see :mod:`repro.attacks.full_key`)
        uses the sample aligned with each byte's source column.

        Returns:
            float array (N, 4): voltage per trace and column cycle.
        """
        ct = np.asarray(ciphertexts, dtype=np.uint8)
        rng = make_rng(seed, "leakage-noise-columns")
        voltages = np.empty((ct.shape[0], 4))
        for column in range(4):
            activity = last_round_activity(
                ct,
                last_round_key,
                value_weight=self.value_weight,
                transition_weight=self.transition_weight,
                column=column,
            )
            noise = rng.normal(0.0, self.noise_sigma_v, size=ct.shape[0])
            voltages[:, column] = (
                self.v_idle - self.droop_per_bit_v * activity + noise
            )
        return voltages


def random_ciphertexts(
    num_traces: int, seed: int = 0
) -> np.ndarray:
    """Uniformly random ciphertext blocks (N, 16) — the bulk-generation
    stand-in for encrypting uniformly random plaintexts."""
    rng = make_rng(seed, "ciphertexts")
    return rng.integers(0, 256, size=(num_traces, 16), dtype=np.uint8)


def verify_fast_path(cipher: AES128, plaintext: bytes) -> bool:
    """Check the vectorized s9 recovery against the reference cipher.

    Used by tests and as a self-check hook: encrypts ``plaintext`` with
    the slow cipher and confirms :func:`state_before_final_sbox`
    reproduces the true round-9 post-round state.
    """
    states = cipher.round_states(plaintext)
    ciphertext = np.frombuffer(
        bytes(states[-1]), dtype=np.uint8
    ).reshape(1, 16)
    recovered = state_before_final_sbox(ciphertext, cipher.last_round_key)
    return recovered[0].tolist() == states[10]

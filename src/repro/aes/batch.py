"""Table-driven batched AES-128: whole campaigns of encryptions in numpy.

The reference cipher in :mod:`repro.aes.aes128` processes one 16-byte
block at a time through per-byte list comprehensions — fine as ground
truth, far too slow to feed 10^5-trace campaigns through the physical
datapath/PDN pipeline.  This module evaluates N encryptions at once on
``uint8`` state arrays of shape ``(N, 16)``:

* SubBytes is a single fancy-indexed S-box lookup;
* ShiftRows is a column gather through
  :data:`repro.aes.leakage.SHIFT_ROWS_SOURCE`;
* MixColumns uses precomputed GF(2^8) times-2/times-3 tables
  (:data:`GMUL2_TABLE` / :data:`GMUL3_TABLE`) on a ``(N, 4, 4)`` view;
* the key schedule is reused verbatim from the reference
  (:func:`repro.aes.aes128.expand_key`).

All outputs are byte-identical to the reference cipher — AES is exact
integer arithmetic, so "fast path" here means *the same bytes computed
with fewer interpreter dispatches*, not an approximation.  The test
suite checks equivalence on the FIPS-197 known-answer vector and on
random key/plaintext batches, and checks :meth:`BatchedAES128.cycle_hd`
against :func:`repro.aes.datapath.encryption_cycle_hd` per trace.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.aes.aes128 import AES128, expand_key
from repro.aes.datapath import DatapathSchedule
from repro.aes.leakage import SBOX_TABLE, SHIFT_ROWS_SOURCE
from repro.util import kernels

#: GF(2^8) multiplication by 2 (xtime) for every byte value.
GMUL2_TABLE = np.array(
    [((b << 1) ^ 0x11B if b & 0x80 else b << 1) & 0xFF for b in range(256)],
    dtype=np.uint8,
)
#: GF(2^8) multiplication by 3 = xtime(b) XOR b.
GMUL3_TABLE = GMUL2_TABLE ^ np.arange(256, dtype=np.uint8)

#: Bit count of every byte value (for Hamming-distance activity).
POPCOUNT8_TABLE = np.array(
    [bin(b).count("1") for b in range(256)], dtype=np.uint8
)


def as_state_array(plaintexts: Union[np.ndarray, Sequence[bytes]]
                   ) -> np.ndarray:
    """Coerce a batch of 16-byte blocks to a ``(N, 16)`` uint8 array."""
    if isinstance(plaintexts, np.ndarray):
        blocks = plaintexts
    else:
        blocks = np.frombuffer(
            b"".join(bytes(p) for p in plaintexts), dtype=np.uint8
        ).reshape(-1, 16)
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError(
            "plaintext batch must have shape (N, 16), got %r"
            % (blocks.shape,)
        )
    if blocks.dtype != np.uint8:
        if blocks.min() < 0 or blocks.max() > 255:
            raise ValueError("plaintext bytes must be in 0..255")
        blocks = blocks.astype(np.uint8)
    return blocks


def _shift_rows_batch(states: np.ndarray) -> np.ndarray:
    """ShiftRows on a ``(N, 16)`` batch (gather from the source map)."""
    return states[:, SHIFT_ROWS_SOURCE]


def _mix_columns_batch(states: np.ndarray) -> np.ndarray:
    """MixColumns on a ``(N, 16)`` batch via the GF(2^8) tables."""
    cols = states.reshape(-1, 4, 4)
    a0 = cols[:, :, 0]
    a1 = cols[:, :, 1]
    a2 = cols[:, :, 2]
    a3 = cols[:, :, 3]
    out = np.empty_like(cols)
    out[:, :, 0] = GMUL2_TABLE[a0] ^ GMUL3_TABLE[a1] ^ a2 ^ a3
    out[:, :, 1] = a0 ^ GMUL2_TABLE[a1] ^ GMUL3_TABLE[a2] ^ a3
    out[:, :, 2] = a0 ^ a1 ^ GMUL2_TABLE[a2] ^ GMUL3_TABLE[a3]
    out[:, :, 3] = GMUL3_TABLE[a0] ^ a1 ^ a2 ^ GMUL2_TABLE[a3]
    return out.reshape(-1, 16)


# ----------------------------------------------------------------------
# numpy reference kernels (registered with the dispatch registry; the
# public API below routes every call through kernels.dispatch, so the
# same call sites transparently run the native backend when selected)
# ----------------------------------------------------------------------


def _round_states_numpy(
    round_keys: np.ndarray, blocks: np.ndarray
) -> np.ndarray:
    """Reference ``(N, 12, 16)`` round-state pipeline (vectorized)."""
    states = np.empty((blocks.shape[0], 12, 16), dtype=np.uint8)
    states[:, 0] = blocks
    state = blocks ^ round_keys[0]
    states[:, 1] = state
    for round_index in range(1, 10):
        state = SBOX_TABLE[state]
        state = _shift_rows_batch(state)
        state = _mix_columns_batch(state)
        state = state ^ round_keys[round_index]
        states[:, round_index + 1] = state
    state = SBOX_TABLE[state]
    state = _shift_rows_batch(state)
    state = state ^ round_keys[10]
    states[:, 11] = state
    return states


def _cycle_hd_numpy(
    states: np.ndarray, cycles_per_round: int
) -> np.ndarray:
    byte_hd = POPCOUNT8_TABLE[states[:, :-1, :] ^ states[:, 1:, :]]
    # (N, 11 rounds, 4 columns): sum the 4 bytes of each column.
    column_hd = (
        byte_hd.reshape(-1, 11, 4, 4).sum(axis=3, dtype=np.int64)
    )
    columns = np.arange(cycles_per_round) % 4
    return column_hd[:, :, columns].reshape(-1, 11 * cycles_per_round)


def _cycle_activity_numpy(
    states: np.ndarray,
    cycles_per_round: int,
    value_weight: float,
    transition_weight: float,
) -> np.ndarray:
    byte_hd = POPCOUNT8_TABLE[states[:, :-1, :] ^ states[:, 1:, :]]
    byte_hw = POPCOUNT8_TABLE[states[:, :-1, :]]
    column_hd = byte_hd.reshape(-1, 11, 4, 4).sum(axis=3, dtype=np.int64)
    column_hw = byte_hw.reshape(-1, 11, 4, 4).sum(axis=3, dtype=np.int64)
    activity = value_weight * column_hw + transition_weight * column_hd
    columns = np.arange(cycles_per_round) % 4
    return activity[:, :, columns].reshape(-1, 11 * cycles_per_round)


def _activity_and_ciphertexts_numpy(
    round_keys: np.ndarray,
    blocks: np.ndarray,
    cycles_per_round: int,
    value_weight: float,
    transition_weight: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference for the fused activity+ciphertext op.

    Materializes the full state tensor (that's what makes the native
    version — one streaming pass over two 16-byte registers per trace —
    worth having) and slices the activity and ciphertexts out of it.
    """
    states = _round_states_numpy(round_keys, blocks)
    activity = _cycle_activity_numpy(
        states, cycles_per_round, value_weight, transition_weight
    )
    return activity, states[:, 11].copy()


kernels.register_backend(
    "aes",
    "numpy",
    round_states=_round_states_numpy,
    cycle_hd_from_states=_cycle_hd_numpy,
    cycle_activity_from_states=_cycle_activity_numpy,
    activity_and_ciphertexts=_activity_and_ciphertexts_numpy,
)


class BatchedAES128:
    """AES-128 over ``(N, 16)`` uint8 plaintext batches.

    Construct from a 16-byte key (runs the reference key schedule) or
    from an existing reference cipher via :meth:`from_cipher` to
    guarantee both operate on the identical round keys.

    Example:
        >>> import numpy as np
        >>> batched = BatchedAES128(bytes(range(16)))
        >>> pt = np.zeros((3, 16), dtype=np.uint8)
        >>> batched.encrypt(pt).shape
        (3, 16)
    """

    def __init__(self, key: bytes):
        self.round_keys = np.array(expand_key(key), dtype=np.uint8)

    @classmethod
    def from_cipher(cls, cipher: AES128) -> "BatchedAES128":
        """Wrap a reference cipher's already-expanded round keys."""
        batched = cls.__new__(cls)
        batched.round_keys = np.array(cipher.round_keys, dtype=np.uint8)
        return batched

    @property
    def last_round_key(self) -> bytes:
        """Round-10 key — the CPA target, as in :class:`AES128`."""
        return bytes(self.round_keys[10])

    def round_states(self, plaintexts: Union[np.ndarray, Sequence[bytes]]
                     ) -> np.ndarray:
        """All register states of N encryptions: ``(N, 12, 16)`` uint8.

        Axis 1 matches :meth:`AES128.round_states`: index 0 is the
        plaintext, 1 the post-whitening state, ``r`` the state after
        round ``r``; index 11 is the ciphertext.
        """
        blocks = as_state_array(plaintexts)
        op = kernels.dispatch("aes", "round_states")
        return op(self.round_keys, blocks)

    def encrypt(self, plaintexts: Union[np.ndarray, Sequence[bytes]]
                ) -> np.ndarray:
        """Ciphertext blocks ``(N, 16)`` uint8."""
        return self.round_states(plaintexts)[:, 11]

    def cycle_hd(
        self,
        plaintexts: Union[np.ndarray, Sequence[bytes]],
        schedule: DatapathSchedule = DatapathSchedule(),
    ) -> np.ndarray:
        """Per-cycle datapath activity: ``(N, schedule.total_cycles)``.

        Row ``t`` equals
        ``encryption_cycle_hd(cipher, plaintexts[t], schedule)``: cycle
        ``cycles_per_round * r + c`` carries the Hamming distance of
        state column ``c % 4`` between the round-``r`` input and output
        registers (``r = 0`` is the whitening AddRoundKey).
        """
        return cycle_hd_from_states(self.round_states(plaintexts), schedule)


def cycle_hd_from_states(
    states: np.ndarray,
    schedule: DatapathSchedule = DatapathSchedule(),
) -> np.ndarray:
    """Per-cycle column activity from precomputed round states.

    Lets callers that already hold the ``(N, 12, 16)`` state tensor
    (e.g. because they also need the ciphertexts) avoid a second
    encryption pass; :meth:`BatchedAES128.cycle_hd` is this applied to
    a fresh :meth:`BatchedAES128.round_states` call.
    """
    op = kernels.dispatch("aes", "cycle_hd_from_states")
    return op(states, schedule.cycles_per_round)


def cycle_activity_from_states(
    states: np.ndarray,
    schedule: DatapathSchedule = DatapathSchedule(),
    value_weight: float = 1.0,
    transition_weight: float = 0.5,
) -> np.ndarray:
    """Per-cycle switching activity (bit-equivalents): ``(N, cycles)``.

    Cycle ``cycles_per_round * r + c`` combines the two CMOS leakage
    components of updating state column ``c % 4`` in round ``r``: the
    *combinational* activity of evaluating the round logic on the
    incoming column (its Hamming weight, scaled by ``value_weight``)
    and the *register-overwrite* activity (the column's Hamming
    distance, scaled by ``transition_weight``).  At the last-round
    cycle of a column this reduces exactly to
    :func:`repro.aes.leakage.last_round_activity` for that column —
    the same leakage composition the analytical campaign model uses.
    """
    op = kernels.dispatch("aes", "cycle_activity_from_states")
    return op(
        states, schedule.cycles_per_round, value_weight, transition_weight
    )


def cycle_activity_and_ciphertexts(
    batched: "BatchedAES128",
    plaintexts: Union[np.ndarray, Sequence[bytes]],
    schedule: DatapathSchedule = DatapathSchedule(),
    value_weight: float = 1.0,
    transition_weight: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused per-cycle activity **and** ciphertexts in one pass.

    Returns ``(activity, ciphertexts)`` exactly equal to::

        states = batched.round_states(plaintexts)
        (cycle_activity_from_states(states, schedule, vw, tw),
         states[:, 11])

    but without requiring the ``(N, 12, 16)`` state tensor: the native
    backend streams each trace through two 16-byte registers, which is
    what the trace generator's hot loop wants (it needs both outputs
    and nothing else from the states).  The numpy reference backend
    still materializes the tensor, so dispatch stays bit-identical.
    """
    blocks = as_state_array(plaintexts)
    op = kernels.dispatch("aes", "activity_and_ciphertexts")
    return op(
        batched.round_keys,
        blocks,
        schedule.cycles_per_round,
        value_weight,
        transition_weight,
    )


def encryption_cycle_hd_batch(
    cipher: AES128,
    plaintexts: Union[np.ndarray, Sequence[bytes]],
    schedule: DatapathSchedule = DatapathSchedule(),
) -> np.ndarray:
    """Batched drop-in for :func:`repro.aes.datapath.encryption_cycle_hd`.

    Shares the reference cipher's round keys, so the result is exactly
    ``np.array([encryption_cycle_hd(cipher, pt, schedule) for pt in
    plaintexts])`` computed in one shot.
    """
    return BatchedAES128.from_cipher(cipher).cycle_hd(plaintexts, schedule)

"""Cycle-accurate activity model of the 32-bit AES datapath.

The paper's victim AES core has a 32-bit datapath "so that four SBoxes
are evaluated in parallel" (Sec. IV): each round processes the state
one 32-bit column per clock cycle, so a full encryption occupies
``10 rounds * 4 cycles`` of the 100 MHz AES clock (plus a whitening
cycle group).  The switching current of the core is dominated by the
state-register transitions, so the per-cycle Hamming distance of the
updated column is the per-cycle activity driving the PDN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.aes.aes128 import AES128, CYCLES_PER_ROUND
from repro.util.bits import hamming_distance


@dataclass(frozen=True)
class DatapathSchedule:
    """Timing constants of the modeled AES core.

    Attributes:
        clock_hz: AES core clock (100 MHz in the paper).
        cycles_per_round: state-register updates per round (4 for the
            32-bit datapath).
    """

    clock_hz: float = 100e6
    cycles_per_round: int = CYCLES_PER_ROUND

    @property
    def total_cycles(self) -> int:
        """Cycles per encryption: whitening plus 10 rounds."""
        return self.cycles_per_round * 11

    def round_of_cycle(self, cycle: int) -> int:
        """Which round (0 = whitening, 1..10) a cycle belongs to."""
        if not 0 <= cycle < self.total_cycles:
            raise ValueError("cycle %d outside 0..%d"
                             % (cycle, self.total_cycles - 1))
        return cycle // self.cycles_per_round

    def last_round_cycles(self) -> range:
        """Cycle indices of round 10 — where the CPA-relevant HD leaks."""
        return range(
            self.cycles_per_round * 10, self.cycles_per_round * 11
        )


def column_hd(prev_state: Sequence[int], next_state: Sequence[int],
              column: int) -> int:
    """Hamming distance of one 32-bit column between two states."""
    if not 0 <= column < 4:
        raise ValueError("column must be 0..3, got %d" % column)
    total = 0
    for row in range(4):
        index = 4 * column + row
        total += hamming_distance(prev_state[index], next_state[index])
    return total


def encryption_cycle_hd(
    cipher: AES128,
    plaintext: bytes,
    schedule: DatapathSchedule = DatapathSchedule(),
) -> List[int]:
    """Per-cycle state-register Hamming distance of one encryption.

    Cycle ``4*r + c`` updates column ``c`` of the state from its
    round-``r-1`` value to its round-``r`` value (``r = 0`` is the
    whitening AddRoundKey).  The returned list has
    ``schedule.total_cycles`` entries and is the activity profile that
    :func:`repro.pdn.aes_current_waveform` converts into current.
    """
    states = cipher.round_states(plaintext)
    cycle_hd: List[int] = []
    for round_index in range(11):  # whitening + rounds 1..10
        prev_state = states[round_index]
        next_state = states[round_index + 1]
        for column in range(schedule.cycles_per_round):
            cycle_hd.append(column_hd(prev_state, next_state, column % 4))
    return cycle_hd

"""Strict timing-based checking — the countermeasure of Sec. VI.

The paper's Discussion observes that a *timing-aware* check would
catch the attack: compare every tenant clock request against the
static-timing fmax of the logic in that clock domain and refuse clocks
that violate it.  It also explains why this is hard to deploy: real
designs are full of false paths and multicycle paths that designers
exempt from timing closure, and those exemptions can hide sensor
paths.

This module implements both sides:

* :func:`strict_timing_check` — the check itself (flags the 300 MHz
  request for a 50 MHz ALU);
* false-path exemptions via :class:`TimingConstraints` — showing that
  a tenant who declares the sensor endpoints as false paths slips a
  formally "timing-clean" design past the check, reproducing the
  paper's argument that even this defense is porous in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set

from repro.timing.delay_model import DelayAnnotation
from repro.timing.sta import analyze_timing


@dataclass(frozen=True)
class TimingConstraints:
    """Tenant-supplied timing exemptions.

    Attributes:
        false_path_endpoints: endpoints exempted from timing analysis
            ("these outputs are quasi-static / never sampled at speed").
        multicycle_endpoints: endpoint -> allowed cycle count.
    """

    false_path_endpoints: FrozenSet[str] = frozenset()

    @classmethod
    def exempting(cls, endpoints: Iterable[str]) -> "TimingConstraints":
        return cls(false_path_endpoints=frozenset(endpoints))


@dataclass
class TimingCheckReport:
    """Outcome of the strict timing check for one clock domain.

    Attributes:
        requested_mhz: the tenant's clock request.
        fmax_mhz: analyzed maximum frequency over *checked* endpoints.
        failing_endpoints: endpoints that cannot meet the request.
        exempted_endpoints: endpoints skipped due to constraints.
    """

    requested_mhz: float
    fmax_mhz: float
    failing_endpoints: List[str]
    exempted_endpoints: List[str]

    @property
    def accepted(self) -> bool:
        return not self.failing_endpoints

    @property
    def exemptions_hide_violations(self) -> bool:
        """Whether exempted endpoints would fail the check."""
        return bool(self.exempted_endpoints) and self.accepted

    def summary(self) -> str:
        verdict = "ACCEPT" if self.accepted else "REJECT"
        return (
            "%s: requested %.0f MHz vs fmax %.1f MHz "
            "(%d failing, %d exempted)"
            % (
                verdict,
                self.requested_mhz,
                self.fmax_mhz,
                len(self.failing_endpoints),
                len(self.exempted_endpoints),
            )
        )


def strict_timing_check(
    annotation: DelayAnnotation,
    requested_clock_mhz: float,
    constraints: Optional[TimingConstraints] = None,
    margin: float = 0.05,
) -> TimingCheckReport:
    """Check a clock request against the design's analyzed timing.

    Args:
        annotation: the placed, delay-annotated tenant netlist.
        requested_clock_mhz: the MMCM frequency the tenant asked for.
        constraints: tenant-declared false paths (exempt endpoints).
        margin: required timing margin (fraction of the period) —
            providers would insist on some guard band.

    Returns:
        a :class:`TimingCheckReport`; rejected when any *non-exempt*
        endpoint's arrival exceeds the derated period.
    """
    if requested_clock_mhz <= 0:
        raise ValueError("requested clock must be positive")
    if not 0 <= margin < 1:
        raise ValueError("margin must be in [0, 1)")
    constraints = constraints or TimingConstraints()
    period_ps = 1e6 / requested_clock_mhz * (1.0 - margin)
    report = analyze_timing(annotation, clock_period_ps=period_ps)

    failing: List[str] = []
    exempted: List[str] = []
    for endpoint, arrival in report.endpoint_arrivals.items():
        if arrival <= period_ps:
            continue
        if endpoint in constraints.false_path_endpoints:
            exempted.append(endpoint)
        else:
            failing.append(endpoint)
    checked = [
        a
        for e, a in report.endpoint_arrivals.items()
        if e not in constraints.false_path_endpoints
    ]
    fmax = 1e6 / max(checked) if checked and max(checked) > 0 else float("inf")
    return TimingCheckReport(
        requested_mhz=requested_clock_mhz,
        fmax_mhz=fmax,
        failing_endpoints=sorted(failing),
        exempted_endpoints=sorted(exempted),
    )

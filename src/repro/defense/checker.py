"""The bitstream/netlist checker tenants' designs pass through.

In the paper's adversary model, the cloud provider scans every
submitted bitstream/netlist for known malicious structures before
loading it (Sec. I/II).  :class:`BitstreamChecker` runs the published
rule set over a netlist and renders an accept/reject verdict.

Reproduced result (stealthiness bench): the checker *rejects* the RO
array and the TDC but *accepts* the ALU and the C6288 — the circuits
this paper turns into sensors — demonstrating that structural checking
is not a universal defense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.defense.rules import (
    SEVERITY_CRITICAL,
    SEVERITY_WARNING,
    Finding,
    Rule,
    default_rules,
)
from repro.netlist.netlist import Netlist


@dataclass
class CheckReport:
    """Outcome of scanning one netlist.

    Attributes:
        netlist_name: scanned design.
        findings: all rule findings.
    """

    netlist_name: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def critical_findings(self) -> List[Finding]:
        return [
            f for f in self.findings if f.severity == SEVERITY_CRITICAL
        ]

    @property
    def warnings(self) -> List[Finding]:
        return [
            f for f in self.findings if f.severity == SEVERITY_WARNING
        ]

    @property
    def accepted(self) -> bool:
        """The provider loads the design only without critical findings."""
        return not self.critical_findings

    def summary(self) -> str:
        verdict = "ACCEPT" if self.accepted else "REJECT"
        lines = [
            "%s: %s (%d finding(s))"
            % (self.netlist_name, verdict, len(self.findings))
        ]
        for finding in self.findings:
            lines.append(
                "  [%s] %s: %s"
                % (finding.severity, finding.rule, finding.message)
            )
        return "\n".join(lines)


class BitstreamChecker:
    """Runs a rule set over tenant netlists.

    Args:
        rules: detection rules; defaults to the published set
            (:func:`repro.defense.rules.default_rules`).
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        self.rules = list(rules) if rules is not None else default_rules()

    def scan(self, netlist: Netlist) -> CheckReport:
        """Scan one netlist and report findings."""
        if not netlist.frozen:
            raise ValueError("netlist must be frozen before scanning")
        report = CheckReport(netlist_name=netlist.name)
        for rule in self.rules:
            report.findings.extend(rule.check(netlist))
        return report

    def scan_many(self, netlists: Sequence[Netlist]) -> List[CheckReport]:
        """Scan a set of tenant designs (e.g. one full bitstream)."""
        return [self.scan(netlist) for netlist in netlists]

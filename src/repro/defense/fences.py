"""Active fences: noise-injection countermeasure (Krautter et al.,
ICCAD 2019; cited by the paper as a *hiding* scheme for cloud FPGAs).

An active fence is a strip of provider-controlled logic (typically ROs
or other power wasters) between tenant regions, driven by a secure
random source.  Its randomized switching current raises the voltage
noise floor every on-chip sensor sees, degrading attack SNR without
touching tenant logic.

:class:`ActiveFence` models the fence's electrical effect;
:class:`FencedLeakageModel` wraps any victim leakage model with it so
campaigns can be rerun under the countermeasure unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aes.leakage import LeakageModel
from repro.util.rng import make_rng


@dataclass(frozen=True)
class ActiveFence:
    """A randomized noise-injection fence.

    Attributes:
        num_elements: fence power-waster count (ROs or equivalent).
        current_per_element_a: current drawn per active element.
        impedance_ohm: local PDN impedance converting fence current
            into voltage disturbance at the sensors.
        activation_probability: fraction of element *groups* toggled
            each sample by the fence controller's RNG.
        group_size: elements driven by one RNG bit.  Grouping is what
            gives the fence its punch: independent per-element bits
            would average out (sigma ~ sqrt(n)), whereas groups of g
            scale the noise by sqrt(g).
        seed: the provider's RNG seed (unknown to tenants).
    """

    num_elements: int = 4000
    current_per_element_a: float = 220e-6
    impedance_ohm: float = 0.08
    activation_probability: float = 0.5
    group_size: int = 64
    seed: int = 99

    def __post_init__(self) -> None:
        if self.num_elements < 0:
            raise ValueError("element count must be non-negative")
        if not 0.0 <= self.activation_probability <= 1.0:
            raise ValueError("activation probability must be in [0, 1]")
        if self.group_size < 1:
            raise ValueError("group size must be >= 1")

    @property
    def num_groups(self) -> int:
        return max(1, self.num_elements // self.group_size)

    @property
    def noise_sigma_v(self) -> float:
        """Standard deviation of the fence-induced voltage noise.

        Binomial activation of ``n/g`` groups of ``g`` elements with
        probability ``p`` gives a current sigma of
        ``i * g * sqrt((n/g) p (1-p)) = i * sqrt(n g p (1-p))``.
        """
        p = self.activation_probability
        current_sigma = (
            self.current_per_element_a
            * self.group_size
            * np.sqrt(self.num_groups * p * (1.0 - p))
        )
        return float(self.impedance_ohm * current_sigma)

    @property
    def mean_droop_v(self) -> float:
        """Static droop from the fence's average current draw."""
        return float(
            self.impedance_ohm
            * self.num_elements
            * self.activation_probability
            * self.current_per_element_a
        )

    def noise_voltages(self, num_samples: int, stream=0) -> np.ndarray:
        """Per-sample voltage disturbance (zero-mean part + droop)."""
        rng = make_rng(self.seed, "fence", stream)
        active_groups = rng.binomial(
            self.num_groups, self.activation_probability, num_samples
        )
        current = (
            active_groups * self.group_size * self.current_per_element_a
        )
        return -(self.impedance_ohm * current)


@dataclass
class FencedLeakageModel:
    """A victim leakage model observed through an active fence.

    Wraps any model exposing ``voltages(ciphertexts, key, seed)`` and
    superimposes the fence disturbance.  The victim signal itself is
    untouched (the fence is *hiding*, not *masking*): with enough
    traces the attack still succeeds, but the measurements-to-
    disclosure grows with the square of the noise ratio.
    """

    base: LeakageModel
    fence: ActiveFence = field(default_factory=ActiveFence)

    def voltages(
        self,
        ciphertexts: np.ndarray,
        last_round_key: bytes,
        seed: int = 0,
    ) -> np.ndarray:
        clean = self.base.voltages(ciphertexts, last_round_key, seed=seed)
        return clean + self.fence.noise_voltages(clean.shape[0], stream=seed)

    def column_voltages(
        self,
        ciphertexts: np.ndarray,
        last_round_key: bytes,
        seed: int = 0,
    ) -> np.ndarray:
        clean = self.base.column_voltages(
            ciphertexts, last_round_key, seed=seed
        )
        for column in range(clean.shape[1]):
            clean[:, column] += self.fence.noise_voltages(
                clean.shape[0], stream=(seed, column)
            )
        return clean

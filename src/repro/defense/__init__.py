"""Bitstream/netlist checking countermeasures.

:class:`BitstreamChecker` runs the published structural rules (loops,
delay-line taps, clock-as-data) that reject TDCs and ROs but pass the
benign circuits — the stealthiness result.  :func:`strict_timing_check`
is the Sec. VI countermeasure that *would* catch the overclocked
misuse, along with the false-path loophole that undermines it.
"""

from repro.defense.checker import BitstreamChecker, CheckReport
from repro.defense.rules import (
    DEFAULT_CLOCK_PATTERNS,
    SEVERITY_CRITICAL,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    ClockAsDataRule,
    CombinationalLoopRule,
    DelayLineTapRule,
    Finding,
    Rule,
    default_rules,
)
from repro.defense.fences import ActiveFence, FencedLeakageModel
from repro.defense.timing_check import (
    TimingCheckReport,
    TimingConstraints,
    strict_timing_check,
)

__all__ = [
    "ActiveFence",
    "BitstreamChecker",
    "FencedLeakageModel",
    "CheckReport",
    "ClockAsDataRule",
    "CombinationalLoopRule",
    "DEFAULT_CLOCK_PATTERNS",
    "DelayLineTapRule",
    "Finding",
    "Rule",
    "SEVERITY_CRITICAL",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "TimingCheckReport",
    "TimingConstraints",
    "default_rules",
    "strict_timing_check",
]

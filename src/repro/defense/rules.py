"""Detection rules for malicious sensor/fault structures in netlists.

These are the published bitstream/netlist checking heuristics the
paper's adversary model assumes are deployed (Krautter et al., TRETS
2019; La et al., "FPGADefender", TRETS 2020):

* **combinational loops** — ring oscillators and other self-oscillating
  structures (Fig. 1 left);
* **delay-line taps** — long chains of route-throughs/buffers with
  registers tapping intermediate stages, the TDC signature (Fig. 1
  right);
* **clock-as-data** — a clock network driving logic data inputs, used
  by clock-based sensors.

Each rule returns :class:`Finding` objects; the checker aggregates
them.  The paper's point, reproduced by the stealthiness bench: the
ALU and C6288 trigger none of these, because they are ordinary logic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from repro.netlist.netlist import Netlist

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"

#: Net-name patterns treated as clock networks by the clock-as-data rule.
DEFAULT_CLOCK_PATTERNS = (r"^clk", r"^clock", r"_clk$", r"^launch$")


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: rule identifier.
        severity: one of info/warning/critical.
        message: human-readable description.
        nets: implicated net names (a sample when many).
    """

    rule: str
    severity: str
    message: str
    nets: Sequence[str] = ()


class Rule:
    """A netlist-checking rule."""

    name = "abstract"

    def check(self, netlist: Netlist) -> List[Finding]:
        raise NotImplementedError


class CombinationalLoopRule(Rule):
    """Flag combinational cycles (ring oscillators, latch hacks).

    Uses iterative DFS over the gate graph; any back edge is a loop.
    """

    name = "combinational-loop"

    def check(self, netlist: Netlist) -> List[Finding]:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {gate.output: WHITE for gate in netlist.gates}
        findings: List[Finding] = []

        for start in list(color):
            if color[start] != WHITE:
                continue
            stack = [(start, iter(self._gate_inputs(netlist, start)))]
            color[start] = GRAY
            path = [start]
            while stack:
                net, iterator = stack[-1]
                advanced = False
                for source in iterator:
                    if source not in color:
                        continue  # primary input
                    if color[source] == GRAY:
                        cycle_start = path.index(source)
                        loop = path[cycle_start:] + [source]
                        findings.append(
                            Finding(
                                rule=self.name,
                                severity=SEVERITY_CRITICAL,
                                message=(
                                    "combinational loop of %d gates"
                                    % (len(loop) - 1)
                                ),
                                nets=tuple(loop[:8]),
                            )
                        )
                        continue
                    if color[source] == WHITE:
                        color[source] = GRAY
                        path.append(source)
                        stack.append(
                            (source, iter(self._gate_inputs(netlist, source)))
                        )
                        advanced = True
                        break
                if not advanced:
                    color[net] = BLACK
                    stack.pop()
                    path.pop()
        return findings

    @staticmethod
    def _gate_inputs(netlist: Netlist, net: str) -> Sequence[str]:
        gate = netlist.gate_driving(net)
        return gate.inputs if gate is not None else ()


class DelayLineTapRule(Rule):
    """Flag tapped delay lines (the TDC structure).

    Searches for maximal chains of single-input gates (BUF/NOT —
    route-throughs and LUT1s on a real device) and counts how many
    chain stages are observed (drive a primary output or non-chain
    logic).  A long chain alone is suspicious (warning); a long chain
    with many observed stages is the TDC signature (critical).
    """

    name = "delay-line-taps"

    def __init__(self, min_chain: int = 8, min_taps: int = 4):
        if min_chain < 2 or min_taps < 1:
            raise ValueError("thresholds too small")
        self.min_chain = min_chain
        self.min_taps = min_taps

    def check(self, netlist: Netlist) -> List[Finding]:
        outputs = set(netlist.outputs)
        is_chain_gate = {
            gate.output: len(gate.inputs) == 1
            for gate in netlist.gates
        }
        # successor within chains: single-input gate fed by this net
        findings: List[Finding] = []
        visited: Set[str] = set()
        for gate in netlist.gates:
            if not is_chain_gate[gate.output] or gate.output in visited:
                continue
            # Walk back to the chain head.
            head = gate.output
            while True:
                driver = netlist.gate_driving(head)
                source = driver.inputs[0]
                upstream = netlist.gate_driving(source)
                if (
                    upstream is not None
                    and is_chain_gate.get(source, False)
                ):
                    head = source
                else:
                    break
            # Walk forward collecting the chain.
            chain = [head]
            visited.add(head)
            cursor = head
            while True:
                next_stage = None
                for consumer in netlist.fanout_of(cursor):
                    if is_chain_gate.get(consumer, False):
                        next_stage = consumer
                        break
                if next_stage is None or next_stage in visited:
                    break
                chain.append(next_stage)
                visited.add(next_stage)
                cursor = next_stage
            if len(chain) < self.min_chain:
                continue
            taps = sum(
                1
                for net in chain
                if net in outputs
                or any(
                    not is_chain_gate.get(consumer, False)
                    for consumer in netlist.fanout_of(net)
                )
            )
            if taps >= self.min_taps:
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=SEVERITY_CRITICAL,
                        message=(
                            "delay line of %d stages with %d observed "
                            "taps (TDC signature)" % (len(chain), taps)
                        ),
                        nets=tuple(chain[:8]),
                    )
                )
            else:
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=SEVERITY_WARNING,
                        message=(
                            "untapped delay line of %d stages"
                            % len(chain)
                        ),
                        nets=tuple(chain[:8]),
                    )
                )
        return findings


class ClockAsDataRule(Rule):
    """Flag clock networks used as data (clock-sampling sensors)."""

    name = "clock-as-data"

    def __init__(
        self, clock_patterns: Iterable[str] = DEFAULT_CLOCK_PATTERNS
    ):
        self._patterns = [re.compile(p, re.IGNORECASE) for p in clock_patterns]

    def _is_clock_net(self, net: str) -> bool:
        return any(p.search(net) for p in self._patterns)

    def check(self, netlist: Netlist) -> List[Finding]:
        findings: List[Finding] = []
        for net in netlist.inputs:
            if not self._is_clock_net(net):
                continue
            consumers = netlist.fanout_of(net)
            if consumers:
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=SEVERITY_CRITICAL,
                        message=(
                            "clock net %s drives %d logic input(s)"
                            % (net, len(consumers))
                        ),
                        nets=(net,) + tuple(consumers[:7]),
                    )
                )
        return findings


def default_rules() -> List[Rule]:
    """The standard published rule set."""
    return [
        CombinationalLoopRule(),
        DelayLineTapRule(),
        ClockAsDataRule(),
    ]

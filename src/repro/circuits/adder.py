"""Ripple-carry adder netlist generators.

The paper's first benign sensor is a 192-bit ripple-carry adder inside
an ALU (Sec. III/IV).  The carry chain is the property the attack
exploits: with stimulus ``A = 2**n - 1, B = 1`` the carry ripples
through every stage, giving a long voltage-sensitive path whose
propagation frontier at the early sampling edge encodes supply voltage.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist


def full_adder(
    builder: NetlistBuilder, a: str, b: str, carry_in: str, tag: str
) -> Tuple[str, str]:
    """Add a 1-bit full adder to ``builder``; returns ``(sum, carry_out)``.

    Structure: two XORs for the sum, carry as ``(a AND b) OR (cin AND
    (a XOR b))`` — the textbook mapping, two gate levels per carry
    stage exactly as the paper describes ("the carry bit passes through
    two gates per full-adder").
    """
    axb = builder.gate("XOR", [a, b], hint="%s_axb" % tag)
    total = builder.gate("XOR", [axb, carry_in], hint="%s_sum" % tag)
    and_ab = builder.gate("AND", [a, b], hint="%s_and" % tag)
    and_cin = builder.gate("AND", [axb, carry_in], hint="%s_andc" % tag)
    carry = builder.gate("OR", [and_ab, and_cin], hint="%s_cout" % tag)
    return total, carry


def half_adder(
    builder: NetlistBuilder, a: str, b: str, tag: str
) -> Tuple[str, str]:
    """Add a half adder; returns ``(sum, carry_out)``."""
    total = builder.gate("XOR", [a, b], hint="%s_sum" % tag)
    carry = builder.gate("AND", [a, b], hint="%s_cout" % tag)
    return total, carry


def build_ripple_carry_adder(width: int, name: str = "") -> Netlist:
    """Build an n-bit ripple-carry adder netlist.

    Primary inputs: ``a0..a{n-1}``, ``b0..b{n-1}``, ``cin``.
    Primary outputs: ``s0..s{n-1}``, ``cout`` — little endian.

    >>> nl = build_ripple_carry_adder(4)
    >>> out = nl.evaluate_outputs({**{'a%d' % i: 1 for i in range(4)},
    ...                            **{'b%d' % i: 0 for i in range(4)},
    ...                            'b0': 1, 'cin': 0})
    >>> [out['s%d' % i] for i in range(4)], out['cout']
    ([0, 0, 0, 0], 1)
    """
    if width < 1:
        raise ValueError("adder width must be >= 1, got %d" % width)
    builder = NetlistBuilder(name or "rca%d" % width)
    a_bus = builder.input_bus("a", width)
    b_bus = builder.input_bus("b", width)
    carry = builder.input("cin")
    sums: List[str] = []
    for i in range(width):
        total, carry = full_adder(builder, a_bus[i], b_bus[i], carry, "fa%d" % i)
        # Rename the sum output to the canonical bus name via a buffer.
        sums.append(builder.gate("BUF", [total], output="s%d" % i))
    cout = builder.gate("BUF", [carry], output="cout")
    builder.mark_outputs(sums + [cout])
    return builder.build()


def adder_input_assignment(
    a_value: int, b_value: int, width: int, carry_in: int = 0
) -> dict:
    """Input-value mapping for a :func:`build_ripple_carry_adder` netlist."""
    values = {"cin": carry_in}
    for i in range(width):
        values["a%d" % i] = (a_value >> i) & 1
        values["b%d" % i] = (b_value >> i) & 1
    return values

"""Registry of the benign circuits evaluated in the paper.

The experiment drivers select circuits by name (``"alu"`` / ``"c6288"``
/ ``"c6288x2"``); this registry bundles each circuit's netlist builder
with its reset/measure stimulus and observed endpoints, so every other
layer can stay circuit-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from repro.circuits.alu import ALU_WIDTH, AluStimulus, build_alu
from repro.circuits.c6288 import (
    C6288_OPERAND_WIDTH,
    C6288Stimulus,
    build_c6288,
)
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class CircuitSpec:
    """A benign circuit plus the inputs that misuse it as a sensor.

    Attributes:
        name: registry key.
        description: one-line human description.
        build: zero-argument netlist factory.
        reset_inputs: input assignment for the reset cycle.
        measure_inputs: input assignment for the measure cycle.
        endpoint_nets: output nets observed as sensor bits, in the bit
            order used by all figures (index 0 = first sensor bit).
        instances: how many physical copies the experiment deploys
            (2 for the paper's C6288 setup).
    """

    name: str
    description: str
    build: Callable[[], Netlist]
    reset_inputs: Mapping[str, int]
    measure_inputs: Mapping[str, int]
    endpoint_nets: Tuple[str, ...]
    instances: int = 1

    @property
    def num_endpoints(self) -> int:
        """Total sensor bits across all instances."""
        return len(self.endpoint_nets) * self.instances


def _alu_spec() -> CircuitSpec:
    stimulus = AluStimulus(ALU_WIDTH)
    return CircuitSpec(
        name="alu",
        description="192-bit ripple-carry-adder ALU (paper Sec. IV)",
        build=lambda: build_alu(ALU_WIDTH),
        reset_inputs=stimulus.reset_inputs,
        measure_inputs=stimulus.measure_inputs,
        endpoint_nets=tuple(stimulus.endpoint_nets),
        instances=1,
    )


def _c6288_spec(instances: int) -> CircuitSpec:
    stimulus = C6288Stimulus(C6288_OPERAND_WIDTH)
    suffix = "x%d" % instances if instances > 1 else ""
    return CircuitSpec(
        name="c6288%s" % suffix,
        description=(
            "%d x ISCAS-85 C6288 16x16 array multiplier (paper Sec. V-D)"
            % instances
        ),
        build=lambda: build_c6288(C6288_OPERAND_WIDTH),
        reset_inputs=stimulus.reset_inputs,
        measure_inputs=stimulus.measure_inputs,
        endpoint_nets=tuple(stimulus.endpoint_nets),
        instances=instances,
    )


def _wallace_spec() -> CircuitSpec:
    from repro.circuits.wallace import build_wallace_multiplier

    stimulus = C6288Stimulus(C6288_OPERAND_WIDTH)
    return CircuitSpec(
        name="wallace16",
        description=(
            "16x16 Wallace-tree multiplier (topology-study extension)"
        ),
        build=lambda: build_wallace_multiplier(C6288_OPERAND_WIDTH),
        reset_inputs=stimulus.reset_inputs,
        measure_inputs=stimulus.measure_inputs,
        endpoint_nets=tuple(stimulus.endpoint_nets),
        instances=1,
    )


_REGISTRY: Dict[str, Callable[[], CircuitSpec]] = {
    "alu": _alu_spec,
    "c6288": lambda: _c6288_spec(1),
    "c6288x2": lambda: _c6288_spec(2),
    "wallace16": _wallace_spec,
}


def available_circuits() -> List[str]:
    """Names accepted by :func:`get_circuit_spec`."""
    return sorted(_REGISTRY)


def get_circuit_spec(name: str) -> CircuitSpec:
    """Look up a benign-circuit spec by registry name.

    >>> get_circuit_spec("alu").num_endpoints
    192
    >>> get_circuit_spec("c6288x2").num_endpoints
    64
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown circuit %r (available: %s)"
            % (name, ", ".join(available_circuits()))
        ) from None
    return factory()

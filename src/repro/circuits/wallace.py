"""Wallace-tree multiplier generator.

A third benign-circuit topology beyond the paper's ALU and C6288: the
Wallace tree reduces partial products with carry-save adders arranged
in a logarithmic-depth *tree* rather than the C6288's linear array.
Same function, same interface, very different timing shape — useful for
studying how much the attack depends on the victim-of-opportunity's
structure (deep linear arrays give long, smooth settle-time ramps;
trees compress everything toward the final carry-propagate adder).

Construction: AND-gate partial products are grouped by bit weight; each
reduction round applies full adders (3->2 compression) and half adders
(2->2) per weight column until at most two rows remain; a ripple-carry
adder merges the final two rows.
"""

from __future__ import annotations

from typing import List

from repro.circuits.adder import full_adder, half_adder
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist


def build_wallace_multiplier(width: int, name: str = "") -> Netlist:
    """Build a ``width`` x ``width`` Wallace-tree multiplier.

    Interface-compatible with :func:`repro.circuits.build_c6288`:
    inputs ``a0..``, ``b0..``; outputs ``p0..p{2w-1}``.
    """
    if width < 2:
        raise ValueError("multiplier width must be >= 2, got %d" % width)
    builder = NetlistBuilder(name or "wallace%dx%d" % (width, width))
    a_bus = builder.input_bus("a", width)
    b_bus = builder.input_bus("b", width)

    # Column-indexed partial-product pool: columns[k] holds nets of
    # binary weight k.
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(
                builder.gate(
                    "AND", [a_bus[j], b_bus[i]], hint="pp%d_%d" % (i, j)
                )
            )

    # Reduction rounds: compress every column to <= 2 entries.
    round_index = 0
    while any(len(column) > 2 for column in columns):
        next_columns: List[List[str]] = [[] for _ in range(2 * width)]
        for k, column in enumerate(columns):
            queue = list(column)
            cell = 0
            while len(queue) >= 3:
                a, b, c = queue[:3]
                queue = queue[3:]
                tag = "w%dc%dk%d" % (round_index, k, cell)
                total, carry = full_adder(builder, a, b, c, tag)
                next_columns[k].append(total)
                next_columns[k + 1].append(carry)
                cell += 1
            if len(queue) == 2 and len(column) > 2:
                a, b = queue
                queue = []
                tag = "w%dc%dk%dh" % (round_index, k, cell)
                total, carry = half_adder(builder, a, b, tag)
                next_columns[k].append(total)
                next_columns[k + 1].append(carry)
            next_columns[k].extend(queue)
        columns = next_columns
        round_index += 1

    # Final carry-propagate addition of the remaining two rows.
    outputs: List[str] = []
    carry: str = ""
    for k in range(2 * width):
        operands = list(columns[k])
        if carry:
            operands.append(carry)
        tag = "fin%d" % k
        if len(operands) == 3:
            total, carry = full_adder(
                builder, operands[0], operands[1], operands[2], tag
            )
        elif len(operands) == 2:
            total, carry = half_adder(builder, operands[0], operands[1], tag)
        elif len(operands) == 1:
            total, carry = operands[0], ""
        else:
            total, carry = builder.constant(0, a_bus[0]), ""
        outputs.append(builder.gate("BUF", [total], output="p%d" % k))
    builder.mark_outputs(outputs)
    return builder.build()

"""Generator for the ISCAS-85 C6288-style 16x16 array multiplier.

The paper's second benign sensor is a pair of ISCAS-85 C6288 circuits
(Hansen, Yalcin, Hayes: "Unveiling the ISCAS-85 benchmarks").  The real
C6288 is a 16x16 array multiplier built from a 15x16 matrix of 240
half/full adder modules realized almost entirely from NOR gates.

Rather than embedding the distributed ``.bench`` file, this module
*generates* the topology programmatically:

* 256 AND gates form the partial products ``p[i][j] = b_i AND a_j``;
* 15 carry-save adder rows (16 adder modules each, the top row made of
  half adders) reduce the partial products, emitting product bits 1..15
  from the row LSBs;
* a final ripple (vector-merge) adder produces product bits 16..31.

Two gate styles are supported.  ``style="xor"`` (default) uses textbook
XOR/AND/OR adder cells; ``style="nor"`` builds each cell from NOR gates
only — matching the NOR-dominant composition of the authentic C6288 —
at the cost of a larger gate count.  Both are verified against integer
multiplication in the test suite.

The generated netlist differs from the distributed C6288 in exact gate
count (the original has 2406 gates after optimizations we do not
replicate) but preserves the properties the paper relies on: a deep
carry-save array with long, data-activatable critical paths ending in
the 32 product-bit endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist

#: Operand width of C6288.
C6288_OPERAND_WIDTH = 16
#: Product width (2 * operand width).
C6288_OUTPUT_WIDTH = 32


def _xor_full_adder(
    builder: NetlistBuilder, a: str, b: str, c: str, tag: str
) -> Tuple[str, str]:
    """Textbook XOR/AND/OR full adder; returns ``(sum, carry)``."""
    axb = builder.gate("XOR", [a, b], hint="%s_x1" % tag)
    total = builder.gate("XOR", [axb, c], hint="%s_s" % tag)
    g1 = builder.gate("AND", [a, b], hint="%s_a1" % tag)
    g2 = builder.gate("AND", [axb, c], hint="%s_a2" % tag)
    carry = builder.gate("OR", [g1, g2], hint="%s_c" % tag)
    return total, carry


def _xor_half_adder(
    builder: NetlistBuilder, a: str, b: str, tag: str
) -> Tuple[str, str]:
    total = builder.gate("XOR", [a, b], hint="%s_s" % tag)
    carry = builder.gate("AND", [a, b], hint="%s_c" % tag)
    return total, carry


def _nor_xnor(builder: NetlistBuilder, a: str, b: str, tag: str) -> str:
    """XNOR from four NOR gates (the C6288 cell idiom)."""
    t1 = builder.gate("NOR", [a, b], hint="%s_n1" % tag)
    t2 = builder.gate("NOR", [a, t1], hint="%s_n2" % tag)
    t3 = builder.gate("NOR", [b, t1], hint="%s_n3" % tag)
    return builder.gate("NOR", [t2, t3], hint="%s_n4" % tag)


def _nor_full_adder(
    builder: NetlistBuilder, a: str, b: str, c: str, tag: str
) -> Tuple[str, str]:
    """NOR-only full adder (12 gates); returns ``(sum, carry)``.

    sum = XNOR(XNOR(a, b), c): since XNOR(a, b) = NOT(a ^ b), a second
    XNOR with c re-inverts, yielding a ^ b ^ c.
    carry = majority(a, b, c) = NOR(NOR(a,b), NOR(a,c), NOR(b,c)).
    """
    xnor_ab = _nor_xnor(builder, a, b, "%s_x" % tag)
    total = _nor_xnor(builder, xnor_ab, c, "%s_y" % tag)
    n_ab = builder.gate("NOR", [a, b], hint="%s_p1" % tag)
    n_ac = builder.gate("NOR", [a, c], hint="%s_p2" % tag)
    n_bc = builder.gate("NOR", [b, c], hint="%s_p3" % tag)
    carry = builder.gate("NOR", [n_ab, n_ac, n_bc], hint="%s_c" % tag)
    return total, carry


def _nor_half_adder(
    builder: NetlistBuilder, a: str, b: str, tag: str
) -> Tuple[str, str]:
    """NOR-only half adder; returns ``(sum, carry)``."""
    xnor_ab = _nor_xnor(builder, a, b, "%s_x" % tag)
    total = builder.gate("NOR", [xnor_ab, xnor_ab], hint="%s_s" % tag)
    n_a = builder.gate("NOR", [a, a], hint="%s_na" % tag)
    n_b = builder.gate("NOR", [b, b], hint="%s_nb" % tag)
    carry = builder.gate("NOR", [n_a, n_b], hint="%s_c" % tag)
    return total, carry


def build_c6288(
    width: int = C6288_OPERAND_WIDTH,
    name: str = "",
    style: str = "xor",
) -> Netlist:
    """Build a C6288-style ``width`` x ``width`` array multiplier.

    Primary inputs: ``a0..a{w-1}``, ``b0..b{w-1}`` (little endian).
    Primary outputs: ``p0..p{2w-1}`` (product, little endian).

    Args:
        width: operand width (16 for the authentic C6288 shape).
        name: netlist name; defaults to ``c6288`` for width 16.
        style: ``"xor"`` for compact textbook adder cells, ``"nor"``
            for the NOR-only cells matching the original's composition.
    """
    if width < 2:
        raise ValueError("multiplier width must be >= 2, got %d" % width)
    if style == "xor":
        fa, ha = _xor_full_adder, _xor_half_adder
    elif style == "nor":
        fa, ha = _nor_full_adder, _nor_half_adder
    else:
        raise ValueError("style must be 'xor' or 'nor', got %r" % (style,))
    default_name = "c6288" if width == C6288_OPERAND_WIDTH else (
        "mult%dx%d" % (width, width)
    )
    builder = NetlistBuilder(name or default_name)
    a_bus = builder.input_bus("a", width)
    b_bus = builder.input_bus("b", width)

    # Partial products: p[i][j] has binary weight i + j.
    partial: List[List[str]] = [
        [
            builder.gate("AND", [a_bus[j], b_bus[i]], hint="pp%d_%d" % (i, j))
            for j in range(width)
        ]
        for i in range(width)
    ]

    outputs: List[str] = [builder.gate("BUF", [partial[0][0]], output="p0")]

    # Carry-save rows.  Row i consumes partial-product row i plus the
    # shifted sums and carries of row i-1; its column-0 sum is product
    # bit i.  sums[j] carries weight i+j, carries[j] weight i+j+1.
    sums: List[Optional[str]] = list(partial[0])  # row 0 "sums"
    carries: List[Optional[str]] = [None] * width
    for i in range(1, width):
        new_sums: List[Optional[str]] = [None] * width
        new_carries: List[Optional[str]] = [None] * width
        for j in range(width):
            operands = [partial[i][j]]
            shifted_sum = sums[j + 1] if j + 1 < width else None
            if shifted_sum is not None:
                operands.append(shifted_sum)
            if carries[j] is not None:
                operands.append(carries[j])
            tag = "r%dc%d" % (i, j)
            if len(operands) == 3:
                new_sums[j], new_carries[j] = fa(
                    builder, operands[0], operands[1], operands[2], tag
                )
            elif len(operands) == 2:
                new_sums[j], new_carries[j] = ha(
                    builder, operands[0], operands[1], tag
                )
            else:
                new_sums[j] = operands[0]
                new_carries[j] = None
        sums, carries = new_sums, new_carries
        outputs.append(builder.gate("BUF", [sums[0]], output="p%d" % i))

    # Vector-merge ripple adder for product bits width .. 2*width-1.
    ripple: Optional[str] = None
    for k in range(width, 2 * width):
        j_sum = k - width + 1      # sums[j] has weight (width-1) + j
        j_carry = k - width        # carries[j] has weight width + j
        operands = []
        if j_sum < width and sums[j_sum] is not None:
            operands.append(sums[j_sum])
        if j_carry < width and carries[j_carry] is not None:
            operands.append(carries[j_carry])
        if ripple is not None:
            operands.append(ripple)
        tag = "vm%d" % k
        if len(operands) == 3:
            total, ripple = fa(builder, *operands, tag=tag)
        elif len(operands) == 2:
            total, ripple = ha(builder, operands[0], operands[1], tag=tag)
        elif len(operands) == 1:
            total, ripple = operands[0], None
        else:
            # Width-2 corner case: no operands left for the MSB.
            total = builder.constant(0, a_bus[0])
            ripple = None
        outputs.append(builder.gate("BUF", [total], output="p%d" % k))

    builder.mark_outputs(outputs)
    return builder.build()


def c6288_input_assignment(
    a_value: int, b_value: int, width: int = C6288_OPERAND_WIDTH
) -> Dict[str, int]:
    """Input-value mapping for a :func:`build_c6288` netlist.

    >>> nl = build_c6288(4)
    >>> out = nl.evaluate_outputs(c6288_input_assignment(7, 9, width=4))
    >>> sum(out['p%d' % i] << i for i in range(8))
    63
    """
    values: Dict[str, int] = {}
    for i in range(width):
        values["a%d" % i] = (a_value >> i) & 1
        values["b%d" % i] = (b_value >> i) & 1
    return values


@dataclass(frozen=True)
class C6288Stimulus:
    """Reset/measure stimulus pair for the C6288 sensor.

    The measure pattern multiplies the two all-ones operands, which
    activates every partial product and drives the longest carry chains
    through the array and the vector-merge adder.  The reset pattern
    zeroes all partial products so every endpoint settles to 0.
    """

    width: int = C6288_OPERAND_WIDTH

    @property
    def reset_inputs(self) -> Dict[str, int]:
        return c6288_input_assignment(0, 0, self.width)

    @property
    def measure_inputs(self) -> Dict[str, int]:
        ones = (1 << self.width) - 1
        return c6288_input_assignment(ones, ones, self.width)

    @property
    def endpoint_nets(self) -> List[str]:
        """The product-bit endpoints observed as sensor bits."""
        return ["p%d" % i for i in range(2 * self.width)]

"""The benign 192-bit ALU used as a stealthy voltage sensor.

This mirrors the paper's first proof-of-concept circuit (Sec. IV): an
ALU whose datapath contains a 192-bit ripple-carry adder.  The ALU is a
perfectly ordinary design — it computes ADD / AND / OR / XOR selected by
a 2-bit opcode — and that ordinariness is the point: no bitstream
checker flags it, yet overclocked it doubles as a voltage sensor.

Opcode encoding (``op1 op0``): ``00`` ADD, ``01`` AND, ``10`` OR,
``11`` XOR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.circuits.adder import full_adder
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist

#: Datapath width of the paper's ALU.
ALU_WIDTH = 192

OP_ADD = 0
OP_AND = 1
OP_OR = 2
OP_XOR = 3

_OP_NAMES = {OP_ADD: "ADD", OP_AND: "AND", OP_OR: "OR", OP_XOR: "XOR"}


def build_alu(width: int = ALU_WIDTH, name: str = "") -> Netlist:
    """Build the n-bit ALU netlist.

    Primary inputs: ``a0..``, ``b0..`` (operands), ``op0``, ``op1``
    (opcode), ``cin`` (adder carry-in).
    Primary outputs: ``r0..r{n-1}`` (result, little endian) and
    ``cout`` (adder carry-out).

    The result word has exactly ``width`` bits; for ``width=192`` these
    are the 192 path endpoints censused in Fig. 7 of the paper.
    """
    if width < 2:
        raise ValueError("ALU width must be >= 2, got %d" % width)
    builder = NetlistBuilder(name or "alu%d" % width)
    a_bus = builder.input_bus("a", width)
    b_bus = builder.input_bus("b", width)
    op0 = builder.input("op0")
    op1 = builder.input("op1")
    carry = builder.input("cin")

    results: List[str] = []
    for i in range(width):
        a, b = a_bus[i], b_bus[i]
        add_sum, carry = full_adder(builder, a, b, carry, "fa%d" % i)
        and_i = builder.gate("AND", [a, b], hint="and%d" % i)
        or_i = builder.gate("OR", [a, b], hint="or%d" % i)
        xor_i = builder.gate("XOR", [a, b], hint="xor%d" % i)
        low = builder.gate("MUX", [op0, add_sum, and_i], hint="mlo%d" % i)
        high = builder.gate("MUX", [op0, or_i, xor_i], hint="mhi%d" % i)
        results.append(
            builder.gate("MUX", [op1, low, high], output="r%d" % i)
        )
    cout = builder.gate("BUF", [carry], output="cout")
    builder.mark_outputs(results + [cout])
    return builder.build()


def alu_input_assignment(
    a_value: int,
    b_value: int,
    opcode: int = OP_ADD,
    carry_in: int = 0,
    width: int = ALU_WIDTH,
) -> Dict[str, int]:
    """Input-value mapping driving a :func:`build_alu` netlist.

    >>> nl = build_alu(8)
    >>> out = nl.evaluate_outputs(alu_input_assignment(200, 56, width=8))
    >>> sum(out['r%d' % i] << i for i in range(8)), out['cout']
    (0, 1)
    """
    if opcode not in _OP_NAMES:
        raise ValueError("opcode must be 0..3, got %r" % (opcode,))
    values = {
        "op0": opcode & 1,
        "op1": (opcode >> 1) & 1,
        "cin": carry_in,
    }
    for i in range(width):
        values["a%d" % i] = (a_value >> i) & 1
        values["b%d" % i] = (b_value >> i) & 1
    return values


@dataclass(frozen=True)
class AluStimulus:
    """A reset/measure stimulus pair for the ALU sensor (Sec. III).

    The *measure* pattern ``A = 2**n - 1, B = 1`` makes the carry ripple
    through all n stages; read before settling, the sum word encodes how
    far the carry travelled, i.e. the instantaneous gate speed.  The
    *reset* pattern returns every endpoint to a known value so the next
    measurement observes fresh transitions.
    """

    width: int = ALU_WIDTH

    @property
    def reset_inputs(self) -> Dict[str, int]:
        return alu_input_assignment(0, 0, OP_ADD, 0, self.width)

    @property
    def measure_inputs(self) -> Dict[str, int]:
        return alu_input_assignment(
            (1 << self.width) - 1, 1, OP_ADD, 0, self.width
        )

    @property
    def endpoint_nets(self) -> List[str]:
        """The result-word endpoints observed as sensor bits."""
        return ["r%d" % i for i in range(self.width)]


def opcode_name(opcode: int) -> str:
    """Human-readable opcode name (``"ADD"``...)."""
    try:
        return _OP_NAMES[opcode]
    except KeyError:
        raise ValueError("opcode must be 0..3, got %r" % (opcode,)) from None

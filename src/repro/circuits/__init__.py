"""Benign circuits misused as voltage sensors.

This package contains generator functions for the two circuits the
paper evaluates — the 192-bit ripple-carry-adder ALU and the ISCAS-85
C6288 16x16 array multiplier — plus generic ripple-carry adders and a
registry (:func:`get_circuit_spec`) binding each circuit to its
sensor stimuli.
"""

from repro.circuits.adder import (
    adder_input_assignment,
    build_ripple_carry_adder,
    full_adder,
    half_adder,
)
from repro.circuits.alu import (
    ALU_WIDTH,
    OP_ADD,
    OP_AND,
    OP_OR,
    OP_XOR,
    AluStimulus,
    alu_input_assignment,
    build_alu,
    opcode_name,
)
from repro.circuits.c6288 import (
    C6288_OPERAND_WIDTH,
    C6288_OUTPUT_WIDTH,
    C6288Stimulus,
    build_c6288,
    c6288_input_assignment,
)
from repro.circuits.kogge_stone import build_kogge_stone_adder
from repro.circuits.wallace import build_wallace_multiplier
from repro.circuits.library import (
    CircuitSpec,
    available_circuits,
    get_circuit_spec,
)

__all__ = [
    "ALU_WIDTH",
    "AluStimulus",
    "C6288_OPERAND_WIDTH",
    "C6288_OUTPUT_WIDTH",
    "C6288Stimulus",
    "CircuitSpec",
    "OP_ADD",
    "OP_AND",
    "OP_OR",
    "OP_XOR",
    "adder_input_assignment",
    "alu_input_assignment",
    "available_circuits",
    "build_alu",
    "build_c6288",
    "build_kogge_stone_adder",
    "build_wallace_multiplier",
    "build_ripple_carry_adder",
    "c6288_input_assignment",
    "full_adder",
    "get_circuit_spec",
    "half_adder",
    "opcode_name",
]

"""Kogge-Stone parallel-prefix adder generator.

An extension beyond the paper's two circuits: the ripple-carry adder is
the *best case* for the attack (one long, easily-activated carry
chain).  A Kogge-Stone adder computes carries in ``log2(n)`` prefix
levels, so its paths are shallow and balanced — the topology ablation
(``benchmarks/test_abl_topology.py``) measures how much harder such a
circuit is to misuse as a sensor at the same overclock.

Structure (little-endian bit i):

* propagate ``p_i = a_i XOR b_i``, generate ``g_i = a_i AND b_i``;
* ``log2`` prefix levels combine ``(G, P)`` pairs at stride 1,2,4,...;
* carry into bit i is ``G_{i-1}`` (extended with the carry-in), and
  ``s_i = p_i XOR carry_i``.
"""

from __future__ import annotations

from typing import List

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist


def build_kogge_stone_adder(width: int, name: str = "") -> Netlist:
    """Build an n-bit Kogge-Stone adder netlist.

    Primary inputs: ``a0..``, ``b0..``, ``cin``; primary outputs:
    ``s0..s{n-1}``, ``cout`` — interface-compatible with
    :func:`repro.circuits.build_ripple_carry_adder`.
    """
    if width < 1:
        raise ValueError("adder width must be >= 1, got %d" % width)
    builder = NetlistBuilder(name or "ks%d" % width)
    a_bus = builder.input_bus("a", width)
    b_bus = builder.input_bus("b", width)
    cin = builder.input("cin")

    propagate: List[str] = []
    generate: List[str] = []
    for i in range(width):
        propagate.append(
            builder.gate("XOR", [a_bus[i], b_bus[i]], hint="p%d" % i)
        )
        generate.append(
            builder.gate("AND", [a_bus[i], b_bus[i]], hint="g%d" % i)
        )

    # Parallel-prefix tree over (G, P).
    group_g = list(generate)
    group_p = list(propagate)
    stride = 1
    level = 0
    while stride < width:
        next_g = list(group_g)
        next_p = list(group_p)
        for i in range(stride, width):
            tag = "l%d_%d" % (level, i)
            carried = builder.gate(
                "AND", [group_p[i], group_g[i - stride]], hint=tag + "_t"
            )
            next_g[i] = builder.gate(
                "OR", [group_g[i], carried], hint=tag + "_g"
            )
            next_p[i] = builder.gate(
                "AND", [group_p[i], group_p[i - stride]], hint=tag + "_p"
            )
        group_g, group_p = next_g, next_p
        stride *= 2
        level += 1

    # Fold in the carry-in: carry out of prefix i (with cin) is
    # G_i OR (P_i AND cin).
    def carry_out_of(i: int) -> str:
        with_cin = builder.gate(
            "AND", [group_p[i], cin], hint="cin%d" % i
        )
        return builder.gate(
            "OR", [group_g[i], with_cin], hint="c%d" % i
        )

    sums: List[str] = []
    sums.append(builder.gate("XOR", [propagate[0], cin], output="s0"))
    for i in range(1, width):
        carry_in = carry_out_of(i - 1)
        sums.append(
            builder.gate("XOR", [propagate[i], carry_in], output="s%d" % i)
        )
    cout = builder.gate("BUF", [carry_out_of(width - 1)], output="cout")
    builder.mark_outputs(sums + [cout])
    return builder.build()

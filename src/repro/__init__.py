"""repro: reproduction of "Stealthy Logic Misuse for Power Analysis
Attacks in Multi-Tenant FPGAs" (DATE 2021).

The library demonstrates — on a simulated multi-tenant FPGA — how
benign logic (an ALU, an ISCAS-85 C6288 multiplier) can be misused as a
voltage-fluctuation sensor for correlation power analysis against a
co-tenant AES module, and why netlist/bitstream checking does not catch
it.

Subpackage guide:

* :mod:`repro.core` — the paper's contribution: benign-logic sensing,
  calibration, post-processing, ATPG stimuli search, attack pipeline.
* :mod:`repro.netlist` / :mod:`repro.circuits` — gate-level substrate
  and the ALU / C6288 benign circuits.
* :mod:`repro.timing` — voltage-dependent delays, STA, timed simulation.
* :mod:`repro.pdn` / :mod:`repro.fabric` — power-distribution network
  transients and the multi-tenant FPGA device model.
* :mod:`repro.sensors` — reference TDC / RO sensors and the RO
  aggressor array.
* :mod:`repro.aes` — the AES-128 victim and its leakage model.
* :mod:`repro.attacks` — CPA/DPA engines and key-recovery metrics.
* :mod:`repro.defense` — bitstream/netlist checking countermeasures.
* :mod:`repro.experiments` — drivers regenerating every paper figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
